//! Pruned SoA assembly of the training QP (Theorem 1).
//!
//! The naive transcription of §4.2 assembles `Q` by evaluating
//! `intersection_volume` for **all** m² subpopulation pairs through
//! bounds-checked `DMatrix::set` calls, and every `A` row against all m
//! supports. But §3.3 sizes subpopulations from nearest-neighbour
//! distances precisely so that each support only *slightly* overlaps its
//! neighbours — at `m = 4000` the overwhelming majority of pairs are
//! disjoint by construction, and the naive loop spends its time proving
//! zeros.
//!
//! [`SubpopGrid`] freezes the supports into the same dimension-major SoA
//! column layout as `quicksel_core::batch` ([`FrozenModel`]) and bins
//! them into a uniform spatial grid (~one cell per subpopulation). Q's
//! assembly then only visits *candidate* pairs — pairs sharing at least
//! one grid cell, a superset of the overlapping pairs — and writes rows
//! through slices; `A` rows gather candidates the same way. The upper
//! triangle is assembled first and mirrored in cache-friendly tiles.
//!
//! # Equivalence contract
//!
//! Every matrix entry the pruned path writes is computed with the same
//! per-dimension `(hi.min(q_hi) - lo.max(q_lo)).max(0.0)` product, in
//! the same dimension order and term association, as
//! [`Rect::intersection_volume`]; pairs the grid prunes are exactly the
//! pairs whose overlap is zero, where the naive path writes nothing
//! (leaving the zero from `DMatrix::zeros`). The assembled `Q`/`A`
//! therefore match the naive [`build_qp`](crate::train::build_qp) to
//! ≤1e-12 (in practice: bit-for-bit) — `tests/assembly_equivalence.rs`
//! pins this on random models including touching, degenerate, and
//! clamped-edge supports.
//!
//! # Parallel assembly
//!
//! Both assembly loops fan out on the workspace pool
//! ([`quicksel_parallel::current`]) when the row count clears the
//! parallel gate (`PAR_MIN_ROWS`): `Q`'s rows and `A`'s constraint rows are written
//! through **disjoint contiguous row slabs** (one deterministic chunk
//! per task, each with its own [`GridScratch`]), and the symmetric
//! mirror partitions by *target* row — writes land strictly in the
//! lower triangle while reads come strictly from the upper, so no cell
//! is ever touched twice. Per-row arithmetic is byte-for-byte the
//! serial loop's, so parallel output equals serial output exactly
//! (`tests/parallel_equivalence.rs` pins this at several thread
//! counts); with one thread (or small `m`) the original serial loops
//! run unchanged.
//!
//! [`FrozenModel`]: crate::batch::FrozenModel

use quicksel_data::ObservedQuery;
use quicksel_geometry::Rect;
use quicksel_linalg::{DMatrix, QpProblem};
use quicksel_parallel::SharedSlice;

/// Tile edge for the symmetric mirror pass (upper → lower triangle).
const MIRROR_TILE: usize = 64;

/// Minimum rows per parallel chunk in the assembly loops: below this
/// the per-task dispatch (plus a fresh [`GridScratch`]) costs more than
/// the rows it covers, so smaller jobs stay on the serial path.
const PAR_MIN_ROWS: usize = 32;

/// Subpopulation supports frozen into SoA columns and binned into a
/// uniform spatial grid; the assembly side's counterpart of the serving
/// side's `FrozenModel`. See the module docs.
#[derive(Debug, Clone)]
pub struct SubpopGrid {
    dim: usize,
    len: usize,
    /// Dimension-major lower bounds, `lo[dim * len + z]`.
    lo: Vec<f64>,
    /// Dimension-major upper bounds, `hi[dim * len + z]`.
    hi: Vec<f64>,
    /// `1 / |G_z|`, exactly as the naive assembly computes it.
    inv_vol: Vec<f64>,
    /// Cells per dimension.
    res: Vec<usize>,
    /// Flattened-index stride per dimension (last dimension contiguous).
    stride: Vec<usize>,
    /// Grid origin (bounding-box lower corner) per dimension.
    origin: Vec<f64>,
    /// Reciprocal cell width per dimension (0 for zero-extent dims).
    inv_w: Vec<f64>,
    /// CSR cell lists: subpops overlapping cell `c` are
    /// `items[start[c]..start[c + 1]]`.
    start: Vec<usize>,
    items: Vec<u32>,
}

/// Reusable scratch for candidate gathering — one per assembly loop, so
/// per-row gathers allocate nothing.
#[derive(Debug, Clone)]
pub struct GridScratch {
    stamp: Vec<u32>,
    tick: u32,
    /// Gathered candidate subpopulation indexes (deduplicated).
    cand: Vec<u32>,
    clo: Vec<usize>,
    chi: Vec<usize>,
    cur: Vec<usize>,
}

impl SubpopGrid {
    /// Freezes `subpops` into SoA columns and bins them into a grid of
    /// roughly one cell per subpopulation (`res ≈ m^(1/d)` per
    /// dimension).
    pub fn new(subpops: &[Rect]) -> Self {
        let len = subpops.len();
        let dim = subpops.first().map_or(0, Rect::dim);
        let mut lo = vec![0.0; dim * len];
        let mut hi = vec![0.0; dim * len];
        let mut inv_vol = Vec::with_capacity(len);
        for (z, r) in subpops.iter().enumerate() {
            assert_eq!(r.dim(), dim, "mixed-dimension subpopulation supports");
            for (d, s) in r.sides().iter().enumerate() {
                lo[d * len + z] = s.lo;
                hi[d * len + z] = s.hi;
            }
            inv_vol.push(1.0 / r.volume());
        }

        // Bounding box over all supports.
        let mut origin = vec![0.0; dim];
        let mut extent = vec![0.0; dim];
        for d in 0..dim {
            let col_lo = &lo[d * len..(d + 1) * len];
            let col_hi = &hi[d * len..(d + 1) * len];
            let mn = col_lo.iter().copied().fold(f64::INFINITY, f64::min);
            let mx = col_hi.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            origin[d] = mn;
            extent[d] = (mx - mn).max(0.0);
        }

        // ~one cell per subpopulation, capped so pathological inputs
        // cannot blow the cell table up.
        let per_dim = if dim == 0 || len == 0 {
            1
        } else {
            ((len as f64).powf(1.0 / dim as f64).round() as usize).clamp(1, 1024)
        };
        let mut res = vec![1usize; dim.max(1)];
        res.truncate(dim.max(1));
        let mut total: usize = 1;
        for d in 0..dim {
            let r = if extent[d] > 0.0 { per_dim } else { 1 };
            res[d] = r;
            total = total.saturating_mul(r);
        }
        // Shrink if the cap still left too many cells (deep dimensions).
        while total > 4 * len.max(16) {
            let (dmax, _) = res.iter().enumerate().max_by_key(|(_, &r)| r).expect("non-empty res");
            if res[dmax] == 1 {
                break;
            }
            total = total / res[dmax] * (res[dmax] / 2).max(1);
            res[dmax] = (res[dmax] / 2).max(1);
        }
        let mut stride = vec![1usize; dim.max(1)];
        for d in (0..dim.saturating_sub(1)).rev() {
            stride[d] = stride[d + 1] * res[d + 1];
        }
        let inv_w: Vec<f64> = (0..dim)
            .map(|d| if extent[d] > 0.0 { res[d] as f64 / extent[d] } else { 0.0 })
            .collect();

        let mut grid = Self {
            dim,
            len,
            lo,
            hi,
            inv_vol,
            res,
            stride,
            origin,
            inv_w,
            start: Vec::new(),
            items: Vec::new(),
        };
        grid.fill_cells();
        grid
    }

    /// Two-pass CSR fill: count cell coverage per subpop, then place.
    fn fill_cells(&mut self) {
        let cells = self.cell_count();
        let mut counts = vec![0usize; cells + 1];
        let mut clo = vec![0usize; self.dim.max(1)];
        let mut chi = vec![0usize; self.dim.max(1)];
        let mut cur = vec![0usize; self.dim.max(1)];
        for z in 0..self.len {
            self.subpop_cell_range(z, &mut clo, &mut chi);
            for_each_cell(&self.stride[..self.dim], &clo, &chi, &mut cur, |c| {
                counts[c + 1] += 1;
            });
        }
        for c in 0..cells {
            counts[c + 1] += counts[c];
        }
        let mut items = vec![0u32; counts[cells]];
        let mut cursor = counts.clone();
        for z in 0..self.len {
            self.subpop_cell_range(z, &mut clo, &mut chi);
            for_each_cell(&self.stride[..self.dim], &clo, &chi, &mut cur, |c| {
                items[cursor[c]] = z as u32;
                cursor[c] += 1;
            });
        }
        self.start = counts;
        self.items = items;
    }

    /// Number of subpopulations `m`.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the grid indexes no subpopulations.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Dimensionality of the supports (0 for an empty set).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Total grid cells.
    fn cell_count(&self) -> usize {
        if self.dim == 0 {
            1
        } else {
            self.res[..self.dim].iter().product()
        }
    }

    /// Fresh scratch sized for this grid.
    pub fn scratch(&self) -> GridScratch {
        GridScratch {
            stamp: vec![0; self.len],
            tick: 0,
            cand: Vec::with_capacity(64),
            clo: vec![0; self.dim.max(1)],
            chi: vec![0; self.dim.max(1)],
            cur: vec![0; self.dim.max(1)],
        }
    }

    /// Cell index of coordinate `x` along dimension `d`, clamped into
    /// the grid.
    #[inline]
    fn cell_of(&self, d: usize, x: f64) -> usize {
        let t = (x - self.origin[d]) * self.inv_w[d];
        if t > 0.0 {
            (t as usize).min(self.res[d] - 1)
        } else {
            0 // also absorbs NaN from 0·∞-free inputs
        }
    }

    fn subpop_cell_range(&self, z: usize, clo: &mut [usize], chi: &mut [usize]) {
        for d in 0..self.dim {
            clo[d] = self.cell_of(d, self.lo[d * self.len + z]);
            chi[d] = self.cell_of(d, self.hi[d * self.len + z]);
        }
    }

    /// `|G_i ∩ G_j|`: same per-dimension product (and early exit on a
    /// zero factor) as [`Rect::intersection_volume`].
    #[inline]
    fn pair_overlap(&self, i: usize, j: usize) -> f64 {
        let m = self.len;
        let mut v = 1.0;
        for d in 0..self.dim {
            let base = d * m;
            let h = self.hi[base + i].min(self.hi[base + j]);
            let l = self.lo[base + i].max(self.lo[base + j]);
            v *= (h - l).max(0.0);
            if v == 0.0 {
                return 0.0;
            }
        }
        v
    }

    /// `|B ∩ G_j|` for a probe rectangle, matching
    /// `rect.intersection_volume(&subpops[j])` exactly.
    #[inline]
    fn rect_overlap(&self, rect: &Rect, j: usize) -> f64 {
        let m = self.len;
        let mut v = 1.0;
        for (d, s) in rect.sides().iter().enumerate() {
            let base = d * m;
            let h = s.hi.min(self.hi[base + j]);
            let l = s.lo.max(self.lo[base + j]);
            v *= (h - l).max(0.0);
            if v == 0.0 {
                return 0.0;
            }
        }
        v
    }

    /// Gathers the deduplicated subpop indexes sharing at least one cell
    /// with the cell range in `scratch.clo/chi` into `scratch.cand`.
    fn gather_cells(&self, scratch: &mut GridScratch) {
        scratch.cand.clear();
        if scratch.tick == u32::MAX {
            scratch.stamp.fill(0);
            scratch.tick = 0;
        }
        scratch.tick += 1;
        let tick = scratch.tick;
        let GridScratch { stamp, cand, clo, chi, cur, .. } = scratch;
        for_each_cell(&self.stride[..self.dim], clo, chi, cur, |c| {
            for &z in &self.items[self.start[c]..self.start[c + 1]] {
                let zi = z as usize;
                if stamp[zi] != tick {
                    stamp[zi] = tick;
                    cand.push(z);
                }
            }
        });
    }

    /// Assembles the full symmetric `Q` matrix
    /// (`Q_ij = |G_i∩G_j|/(|G_i||G_j|)`, diagonal `1/|G_i|`): candidate
    /// pairs from the grid, slice row writes, upper triangle first, then
    /// a tiled mirror.
    pub fn assemble_q(&self) -> DMatrix {
        let m = self.len;
        let mut q = DMatrix::zeros(m, m);
        let pool = quicksel_parallel::current();
        // Candidate-pair tiles write disjoint row slabs, so the fan-out
        // is bit-identical to the serial sweep.
        let pieces = pool.chunks_for(m, PAR_MIN_ROWS);
        pool.scope_slabs(q.as_mut_slice(), m, pieces, |rows, slab| {
            let mut scratch = self.scratch();
            for (k, i) in rows.enumerate() {
                self.q_row_upper(i, &mut slab[k * m..(k + 1) * m], &mut scratch);
            }
        });
        self.mirror_upper_to_lower(q.as_mut_slice(), &pool);
        q
    }

    /// Fills row `i`'s diagonal and strict upper triangle (`j > i`),
    /// exactly as one iteration of the serial assembly sweep.
    fn q_row_upper(&self, i: usize, row: &mut [f64], scratch: &mut GridScratch) {
        self.subpop_cell_range(i, &mut scratch.clo, &mut scratch.chi);
        self.gather_cells(scratch);
        row[i] = self.inv_vol[i];
        for &zj in &scratch.cand {
            let j = zj as usize;
            if j <= i {
                continue;
            }
            let inter = self.pair_overlap(i, j);
            if inter > 0.0 {
                row[j] = inter * self.inv_vol[i] * self.inv_vol[j];
            }
        }
    }

    /// Mirrors the upper triangle into the lower one in cache-friendly
    /// tiles, partitioned by *target* row across the pool: every write
    /// lands strictly below the diagonal while every read comes
    /// strictly from above it, so concurrent chunks never touch the
    /// same cell (pure copies — any order yields the same matrix).
    fn mirror_upper_to_lower(&self, data: &mut [f64], pool: &quicksel_parallel::ThreadPool) {
        let m = self.len;
        let shared = SharedSlice::new(data);
        let shared = &shared;
        // SAFETY: `run_chunks` hands out disjoint target-row ranges
        // (inline over the full range in the serial case) — see
        // `mirror_rows`'s contract.
        pool.run_chunks(m, PAR_MIN_ROWS * 2, |range| unsafe { mirror_rows(shared, m, range) });
    }

    /// Fills one `A` row (`A_j = |B∩G_j|/|G_j|`) for a predicate
    /// rectangle: zeroes the row, then writes only grid candidates. Wide
    /// rectangles covering most of the grid fall back to the dense scan
    /// (same values, no gather overhead).
    pub fn constraint_row_into(&self, rect: &Rect, row: &mut [f64], scratch: &mut GridScratch) {
        assert_eq!(row.len(), self.len, "constraint row length must be m");
        assert!(
            self.len == 0 || rect.dim() == self.dim,
            "constraint rect dimensionality {} does not match the supports' {}",
            rect.dim(),
            self.dim
        );
        row.fill(0.0);
        if self.len == 0 {
            return;
        }
        let mut covered: usize = 1;
        for d in 0..self.dim {
            let s = rect.side(d);
            scratch.clo[d] = self.cell_of(d, s.lo.min(s.hi));
            scratch.chi[d] = self.cell_of(d, s.hi.max(s.lo));
            covered = covered.saturating_mul(scratch.chi[d] - scratch.clo[d] + 1);
        }
        if covered * 2 >= self.cell_count() {
            for (j, r) in row.iter_mut().enumerate() {
                let inter = self.rect_overlap(rect, j);
                if inter > 0.0 {
                    *r = inter * self.inv_vol[j];
                }
            }
            return;
        }
        self.gather_cells(scratch);
        for &zj in &scratch.cand {
            let j = zj as usize;
            let inter = self.rect_overlap(rect, j);
            if inter > 0.0 {
                row[j] = inter * self.inv_vol[j];
            }
        }
    }

    /// Assembles the constraint matrix `A` (row 0 the implicit `(B0, 1)`
    /// all-ones row) and the observed-selectivity rhs `s`.
    pub fn assemble_a(&self, queries: &[ObservedQuery]) -> (DMatrix, Vec<f64>) {
        let m = self.len;
        let n = queries.len() + 1;
        let mut a = DMatrix::zeros(n, m);
        let mut s = Vec::with_capacity(n);
        a.row_mut(0).fill(1.0);
        s.push(1.0);
        let pool = quicksel_parallel::current();
        // Grid-pruned rows write disjoint slabs of A (row 0 is the
        // implicit all-ones row, already written above).
        let pieces = pool.chunks_for(queries.len(), PAR_MIN_ROWS);
        pool.scope_slabs(&mut a.as_mut_slice()[m..], m, pieces, |rows, slab| {
            let mut scratch = self.scratch();
            for (k, qi) in rows.enumerate() {
                self.constraint_row_into(
                    &queries[qi].rect,
                    &mut slab[k * m..(k + 1) * m],
                    &mut scratch,
                );
            }
        });
        s.extend(queries.iter().map(|q| q.selectivity));
        (a, s)
    }

    /// Assembles the whole training QP; the pruned equivalent of the
    /// naive [`build_qp`](crate::train::build_qp).
    pub fn assemble_qp(&self, queries: &[ObservedQuery]) -> QpProblem {
        let q = self.assemble_q();
        let (a, s) = self.assemble_a(queries);
        QpProblem::new(q, a, s).expect("assembled shapes are consistent by construction")
    }
}

/// Copies the strict upper triangle into the lower one for the target
/// rows `j ∈ rows`, in [`MIRROR_TILE`]-sized tiles. Every write is a
/// strict-lower cell `(j, i)` with `j` in `rows`; every read is a
/// strict-upper cell `(i, j)` — no mirror invocation writes those.
///
/// # Safety
/// Concurrent callers over the same matrix must use disjoint `rows`
/// ranges and must not otherwise access the matrix.
unsafe fn mirror_rows(data: &SharedSlice<'_, f64>, m: usize, rows: std::ops::Range<usize>) {
    let mut j0 = rows.start;
    while j0 < rows.end {
        let jmax = (j0 + MIRROR_TILE).min(rows.end);
        let mut i0 = 0;
        while i0 < jmax {
            let imax = (i0 + MIRROR_TILE).min(jmax);
            for i in i0..imax {
                for j in j0.max(i + 1)..jmax {
                    let v = data.get(i * m + j);
                    if v != 0.0 {
                        data.set(j * m + i, v);
                    }
                }
            }
            i0 = imax;
        }
        j0 = jmax;
    }
}

/// Odometer iteration over the flattened indexes of the cell box
/// `[clo, chi]` (inclusive); `cur` is caller scratch.
fn for_each_cell(
    stride: &[usize],
    clo: &[usize],
    chi: &[usize],
    cur: &mut [usize],
    mut f: impl FnMut(usize),
) {
    let d = stride.len();
    if d == 0 {
        f(0);
        return;
    }
    cur[..d].copy_from_slice(&clo[..d]);
    loop {
        let flat: usize = (0..d).map(|k| cur[k] * stride[k]).sum();
        f(flat);
        // Increment the odometer, last dimension fastest.
        let mut k = d;
        loop {
            if k == 0 {
                return;
            }
            k -= 1;
            cur[k] += 1;
            if cur[k] <= chi[k] {
                break;
            }
            cur[k] = clo[k];
            if k == 0 {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::build_qp;
    use quicksel_geometry::Domain;

    fn domain() -> Domain {
        Domain::of_reals(&[("x", 0.0, 10.0), ("y", 0.0, 10.0)])
    }

    fn grid_subpops() -> Vec<Rect> {
        let d = domain();
        let mut v = Vec::new();
        for i in 0..6 {
            for j in 0..6 {
                let cx = 0.85 + 1.66 * i as f64;
                let cy = 0.85 + 1.66 * j as f64;
                v.push(
                    Rect::from_bounds(&[(cx - 1.1, cx + 1.1), (cy - 1.1, cy + 1.1)])
                        .clamp_to(&d.full_rect()),
                );
            }
        }
        v
    }

    #[test]
    fn pruned_q_matches_naive_exactly() {
        let subs = grid_subpops();
        let queries = vec![
            ObservedQuery::new(Rect::from_bounds(&[(0.0, 5.0), (0.0, 5.0)]), 0.5),
            ObservedQuery::new(Rect::from_bounds(&[(2.0, 2.0), (0.0, 10.0)]), 0.0), // degenerate
            ObservedQuery::new(Rect::from_bounds(&[(-5.0, 0.0), (0.0, 5.0)]), 0.0), // touching edge
            ObservedQuery::new(Rect::from_bounds(&[(20.0, 30.0), (20.0, 30.0)]), 0.0), // disjoint
        ];
        let naive = build_qp(&domain(), &subs, &queries);
        let pruned = SubpopGrid::new(&subs).assemble_qp(&queries);
        assert_eq!(naive.q.max_abs_diff(&pruned.q), 0.0, "Q diverged");
        assert_eq!(naive.a.max_abs_diff(&pruned.a), 0.0, "A diverged");
        assert_eq!(naive.s, pruned.s);
    }

    #[test]
    fn empty_and_single_subpop() {
        let grid = SubpopGrid::new(&[]);
        assert!(grid.is_empty());
        assert_eq!(grid.assemble_q().rows(), 0);

        let one = vec![Rect::from_bounds(&[(0.0, 2.0), (0.0, 2.0)])];
        let grid = SubpopGrid::new(&one);
        let q = grid.assemble_q();
        assert_eq!(q.rows(), 1);
        assert!((q.get(0, 0) - 0.25).abs() < 1e-15);
    }

    #[test]
    fn wide_probe_takes_dense_path_with_same_values() {
        let subs = grid_subpops();
        let grid = SubpopGrid::new(&subs);
        let wide = Rect::from_bounds(&[(-100.0, 100.0), (-100.0, 100.0)]);
        let mut scratch = grid.scratch();
        let mut row = vec![0.0; subs.len()];
        grid.constraint_row_into(&wide, &mut row, &mut scratch);
        for (j, r) in row.iter().enumerate() {
            let inter = wide.intersection_volume(&subs[j]);
            assert_eq!(*r, inter * (1.0 / subs[j].volume()));
        }
    }

    #[test]
    fn identical_supports_share_cells() {
        // Duplicated supports (sampling can repeat centers) must still
        // produce the full pairwise overlap structure.
        let r = Rect::from_bounds(&[(1.0, 3.0), (1.0, 3.0)]);
        let subs = vec![r.clone(), r.clone(), r];
        let q = SubpopGrid::new(&subs).assemble_q();
        let naive = build_qp(&domain(), &subs, &[]);
        assert_eq!(naive.q.max_abs_diff(&q), 0.0);
    }
}
