//! The [`QuickSel`] estimator: observation buffer + refine loop.

use crate::config::{QuickSelConfig, RefinePolicy};
use crate::model::UniformMixtureModel;
use crate::subpop::{build_subpopulations, workload_points};
use crate::train::{train, TrainReport};
use quicksel_data::{ObservedQuery, SelectivityEstimator};
use quicksel_geometry::{Domain, Predicate, Rect};
use quicksel_linalg::LinalgError;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Query-driven selectivity learner backed by a uniform mixture model.
///
/// Feed it `(predicate, actual selectivity)` pairs with
/// [`observe`](SelectivityEstimator::observe); depending on the configured
/// [`RefinePolicy`] it retrains immediately, every `k` observations, or on
/// explicit [`refine`](QuickSel::refine) calls. Estimates come from the
/// last trained model; before any training, the estimator falls back to
/// the uniform prior `|B ∩ B0| / |B0|`.
pub struct QuickSel {
    domain: Domain,
    config: QuickSelConfig,
    queries: Vec<ObservedQuery>,
    /// Workload-aware points, `points_per_query` per observation (§3.3
    /// step 1); generated once at observe time so refines are stable.
    point_pool: Vec<Vec<f64>>,
    model: Option<UniformMixtureModel>,
    rng: StdRng,
    pending_since_refine: usize,
    last_report: Option<TrainReport>,
}

impl QuickSel {
    /// Creates an estimator with the paper-default configuration.
    pub fn new(domain: Domain) -> Self {
        Self::with_config(domain, QuickSelConfig::default())
    }

    /// Creates an estimator with an explicit configuration.
    pub fn with_config(domain: Domain, config: QuickSelConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        Self {
            domain,
            config,
            queries: Vec::new(),
            point_pool: Vec::new(),
            model: None,
            rng,
            pending_since_refine: 0,
            last_report: None,
        }
    }

    /// The estimator's domain.
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// The active configuration.
    pub fn config(&self) -> &QuickSelConfig {
        &self.config
    }

    /// Number of queries observed so far.
    pub fn observed_count(&self) -> usize {
        self.queries.len()
    }

    /// The observed queries so far, in arrival order.
    pub fn observed(&self) -> &[ObservedQuery] {
        &self.queries
    }

    /// Diagnostics from the most recent training run.
    pub fn last_report(&self) -> Option<&TrainReport> {
        self.last_report.as_ref()
    }

    /// The current model, if trained.
    pub fn model(&self) -> Option<&UniformMixtureModel> {
        self.model.as_ref()
    }

    /// Retrains the mixture model on everything observed so far.
    ///
    /// Runs the full §3.3 + §4 pipeline: sample `m = min(4n, 4000)`
    /// centers from the workload point pool, size their supports, assemble
    /// the QP, solve. A no-op when nothing has been observed.
    pub fn refine(&mut self) -> Result<(), LinalgError> {
        if self.queries.is_empty() {
            return Ok(());
        }
        let m = self.config.target_subpops(self.queries.len());
        let subpops = build_subpopulations(
            &self.domain,
            &self.point_pool,
            m,
            self.config.size_neighbors,
            self.config.overlap_factor,
            &mut self.rng,
        );
        if subpops.is_empty() {
            // All observed predicates were degenerate; keep the prior.
            return Ok(());
        }
        let (model, report) = train(
            &self.domain,
            subpops,
            &self.queries,
            self.config.training,
            self.config.lambda,
            self.config.ridge_rel,
        )?;
        self.model = Some(model);
        self.last_report = Some(report);
        self.pending_since_refine = 0;
        Ok(())
    }

    /// Convenience: estimate a conjunctive [`Predicate`].
    pub fn estimate_pred(&self, pred: &Predicate) -> f64 {
        self.estimate(&pred.to_rect(&self.domain))
    }

    /// The uniform-prior estimate used before the first training run.
    fn prior(&self, rect: &Rect) -> f64 {
        let b0 = self.domain.full_rect();
        (rect.intersection_volume(&b0) / b0.volume()).clamp(0.0, 1.0)
    }
}

impl SelectivityEstimator for QuickSel {
    fn name(&self) -> &'static str {
        "QuickSel"
    }

    fn observe(&mut self, query: &ObservedQuery) {
        let pts = workload_points(&query.rect, self.config.points_per_query, &mut self.rng);
        self.point_pool.extend(pts);
        self.queries.push(query.clone());
        self.pending_since_refine += 1;
        let retrain = match self.config.refine_policy {
            RefinePolicy::EveryQuery => true,
            RefinePolicy::EveryK(k) => self.pending_since_refine >= k.max(1),
            RefinePolicy::Manual => false,
        };
        if retrain {
            // Training failures (pathological degenerate workloads) keep
            // the previous model rather than panicking the host DBMS.
            let _ = self.refine();
        }
    }

    fn estimate(&self, rect: &Rect) -> f64 {
        match &self.model {
            Some(m) => m.estimate(rect),
            None => self.prior(rect),
        }
    }

    fn param_count(&self) -> usize {
        // The learned parameters are the subpopulation weights (m of them,
        // = min(4n, 4000) under the default policy) — Figure 4's y-axis.
        self.model.as_ref().map_or(0, UniformMixtureModel::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrainingMethod;
    use quicksel_data::datasets::gaussian::gaussian_table;
    use quicksel_data::workload::{CenterMode, QueryGenerator, RectWorkload, ShiftMode};
    use quicksel_data::{mean_rel_error_pct, Table};

    fn domain() -> Domain {
        Domain::of_reals(&[("x", 0.0, 10.0), ("y", 0.0, 10.0)])
    }

    #[test]
    fn prior_is_uniform_before_observations() {
        let qs = QuickSel::new(domain());
        let q = Rect::from_bounds(&[(0.0, 5.0), (0.0, 10.0)]);
        assert!((qs.estimate(&q) - 0.5).abs() < 1e-12);
        assert_eq!(qs.param_count(), 0);
    }

    #[test]
    fn observing_retrains_under_default_policy() {
        let mut qs = QuickSel::new(domain());
        let q = ObservedQuery::new(Rect::from_bounds(&[(0.0, 5.0), (0.0, 5.0)]), 0.9);
        qs.observe(&q);
        assert_eq!(qs.observed_count(), 1);
        assert!(qs.model().is_some());
        assert_eq!(qs.param_count(), 4); // min(4·1, 4000)
        // The training constraint is reproduced.
        assert!((qs.estimate(&q.rect) - 0.9).abs() < 0.05);
    }

    #[test]
    fn manual_policy_defers_training() {
        let mut cfg = QuickSelConfig::default();
        cfg.refine_policy = RefinePolicy::Manual;
        let mut qs = QuickSel::with_config(domain(), cfg);
        let q = ObservedQuery::new(Rect::from_bounds(&[(0.0, 5.0), (0.0, 5.0)]), 0.9);
        qs.observe(&q);
        assert!(qs.model().is_none());
        qs.refine().unwrap();
        assert!(qs.model().is_some());
    }

    #[test]
    fn every_k_policy_batches() {
        let mut cfg = QuickSelConfig::default();
        cfg.refine_policy = RefinePolicy::EveryK(3);
        let mut qs = QuickSel::with_config(domain(), cfg);
        let q = ObservedQuery::new(Rect::from_bounds(&[(0.0, 5.0), (0.0, 5.0)]), 0.9);
        qs.observe(&q);
        qs.observe(&q);
        assert!(qs.model().is_none());
        qs.observe(&q);
        assert!(qs.model().is_some());
    }

    #[test]
    fn degenerate_observations_keep_prior() {
        let mut qs = QuickSel::new(domain());
        let degenerate = ObservedQuery::new(Rect::from_bounds(&[(5.0, 5.0), (0.0, 10.0)]), 0.0);
        qs.observe(&degenerate);
        // No points could be generated, so we remain on the prior.
        assert!(qs.model().is_none());
        let q = Rect::from_bounds(&[(0.0, 10.0), (0.0, 10.0)]);
        assert_eq!(qs.estimate(&q), 1.0);
    }

    fn learning_run(table: &Table, train_n: usize, cfg: QuickSelConfig) -> f64 {
        let mut gen = RectWorkload::new(
            table.domain().clone(),
            7,
            ShiftMode::Random,
            CenterMode::DataRow,
        )
        .with_width_frac(0.15, 0.45);
        let mut qs = QuickSel::with_config(table.domain().clone(), cfg);
        for q in gen.take_queries(table, train_n) {
            qs.observe(&q);
        }
        let test = gen.take_queries(table, 50);
        let pairs: Vec<(f64, f64)> =
            test.iter().map(|q| (q.selectivity, qs.estimate(&q.rect))).collect();
        mean_rel_error_pct(&pairs)
    }

    #[test]
    fn learns_gaussian_distribution() {
        let table = gaussian_table(2, 0.4, 20_000, 31);
        let mut cfg = QuickSelConfig::default();
        cfg.refine_policy = RefinePolicy::Manual;
        let mut gen = RectWorkload::new(
            table.domain().clone(),
            7,
            ShiftMode::Random,
            CenterMode::DataRow,
        )
        .with_width_frac(0.15, 0.45);
        let mut qs = QuickSel::with_config(table.domain().clone(), cfg);
        for q in gen.take_queries(&table, 100) {
            qs.observe(&q);
        }
        qs.refine().unwrap();
        let test = gen.take_queries(&table, 50);
        let pairs: Vec<(f64, f64)> =
            test.iter().map(|q| (q.selectivity, qs.estimate(&q.rect))).collect();
        let err = mean_rel_error_pct(&pairs);
        // Paper reports low-single-digit % on the Gaussian workload after
        // 100 queries (Fig 7a); allow generous slack for the synthetic rig.
        assert!(err < 30.0, "relative error {err}%");
        // And we must beat the uninformed uniform prior by a wide margin.
        let prior_pairs: Vec<(f64, f64)> = test
            .iter()
            .map(|q| {
                let b0 = table.domain().full_rect();
                (q.selectivity, q.rect.volume() / b0.volume())
            })
            .collect();
        let prior_err = mean_rel_error_pct(&prior_pairs);
        assert!(err < 0.5 * prior_err, "learned {err}% vs prior {prior_err}%");
    }

    #[test]
    fn error_decreases_with_more_observations() {
        let table = gaussian_table(2, 0.4, 20_000, 33);
        let mut cfg = QuickSelConfig::default();
        cfg.refine_policy = RefinePolicy::EveryK(25);
        let few = learning_run(&table, 10, cfg.clone());
        let many = learning_run(&table, 150, cfg);
        assert!(
            many < few * 0.9,
            "error should drop with data: 10 queries → {few}%, 150 queries → {many}%"
        );
    }

    #[test]
    fn standard_qp_training_also_learns() {
        let table = gaussian_table(2, 0.4, 10_000, 35);
        let mut cfg = QuickSelConfig::default();
        cfg.training = TrainingMethod::StandardQp;
        cfg.refine_policy = RefinePolicy::EveryK(30);
        let err = learning_run(&table, 60, cfg);
        assert!(err < 60.0, "relative error {err}%");
    }

    #[test]
    fn estimates_always_in_unit_interval() {
        let table = gaussian_table(2, 0.6, 5_000, 37);
        let mut gen = RectWorkload::new(
            table.domain().clone(),
            11,
            ShiftMode::Random,
            CenterMode::Uniform,
        );
        let mut qs = QuickSel::new(table.domain().clone());
        for q in gen.take_queries(&table, 30) {
            qs.observe(&q);
        }
        for q in gen.take_queries(&table, 100) {
            let e = qs.estimate(&q.rect);
            assert!((0.0..=1.0).contains(&e), "estimate {e}");
        }
    }

    #[test]
    fn param_count_follows_four_n_rule() {
        let table = gaussian_table(2, 0.0, 2_000, 39);
        let mut gen =
            RectWorkload::new(table.domain().clone(), 13, ShiftMode::Random, CenterMode::DataRow);
        let mut qs = QuickSel::new(table.domain().clone());
        for (i, q) in gen.take_queries(&table, 20).iter().enumerate() {
            qs.observe(q);
            assert_eq!(qs.param_count(), 4 * (i + 1));
        }
    }
}
