//! The [`QuickSel`] estimator: observation buffer + refine loop.

use crate::batch::FrozenModel;
use crate::config::{QuickSelConfig, RefinePolicy, TrainingMethod};
use crate::model::UniformMixtureModel;
use crate::snapshot::ModelSnapshot;
use crate::state::{QuickSelState, StateError};
use crate::subpop::{build_subpopulations, workload_points};
use crate::train::{train, IncrementalTrainer, TrainReport};
use quicksel_data::{
    Estimate, EstimatorError, Learn, ObservedQuery, RefineOutcome, SnapshotSource,
};
use quicksel_geometry::{Domain, Predicate, Rect};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Query-driven selectivity learner backed by a uniform mixture model.
///
/// Feed it `(predicate, actual selectivity)` pairs with
/// [`observe_batch`](Learn::observe_batch) (or the single-query
/// [`observe`](Learn::observe) convenience); depending on the configured
/// [`RefinePolicy`] it retrains after each batch, once `k` observations
/// accumulate, or only on explicit [`refine`](QuickSel::refine) calls.
/// Estimates come from the last trained model; before any training, the
/// estimator falls back to the uniform prior `|B ∩ B0| / |B0|`.
///
/// Training is fallible: explicit `refine` calls return the typed
/// [`EstimatorError`], and failures of *automatic* refines inside
/// `observe_batch` keep the previous model and are recorded in
/// [`last_error`](QuickSel::last_error) instead of being discarded.
///
/// For concurrent serving, [`snapshot`](QuickSel::snapshot) freezes the
/// current model into a cheap, immutable [`ModelSnapshot`] that answers
/// [`Estimate`] queries from any number of threads.
pub struct QuickSel {
    domain: Arc<Domain>,
    config: QuickSelConfig,
    queries: Vec<ObservedQuery>,
    /// Workload-aware points, `points_per_query` per observation (§3.3
    /// step 1); generated once at observe time so refines are stable.
    point_pool: Vec<Vec<f64>>,
    model: Option<Arc<UniformMixtureModel>>,
    rng: StdRng,
    pending_since_refine: usize,
    last_report: Option<TrainReport>,
    last_error: Option<EstimatorError>,
    version: u64,
    /// Cached analytic-training state (assembled `Q`, `AᵀA`, Cholesky
    /// factor). Present after a successful cold analytic refine; serves
    /// warm incremental refines while the subpopulation budget is
    /// unchanged.
    trainer: Option<IncrementalTrainer>,
    /// Pool points held per query, parallel to `queries` (the pool is
    /// their concatenation, in query order).
    point_counts: Vec<u32>,
    /// Length of the compacted summary prefix of `queries`: entries
    /// `0..compacted_len` are merged summaries of evicted history.
    compacted_len: usize,
    /// Members folded into each compacted entry (`compacted_len` long).
    compact_counts: Vec<u64>,
    /// History entries evicted (merged away) over this estimator's life.
    evicted_total: u64,
    /// Evictions since the last successful refine; surfaced through
    /// [`TrainReport::evicted_rows`] and reset at install.
    evicted_since_refine: usize,
    /// Cold resamples forced by the drift detector.
    drift_resamples: u64,
    /// EWMA baseline of warm-refine constraint violation (NaN = unset).
    violation_ewma: f64,
    /// Consecutive warm refines whose violation broke the drift ratio.
    drift_strikes: u32,
    /// The drift detector demands the next refine resample cold.
    force_cold: bool,
    /// History was edited (evictions) since the last refine — the model
    /// is stale even with nothing pending.
    history_dirty: bool,
    /// The last refine kept the prior on all-degenerate feedback; that
    /// feedback is consumed, so later refines return cheaply instead of
    /// re-running the full rebuild just to fail again.
    prior_kept: bool,
}

/// Smoothing factor of the warm-refine violation baseline.
const DRIFT_EWMA_ALPHA: f64 = 0.2;

/// Violations below this floor never count as drift — a near-zero
/// baseline would otherwise turn ordinary solver noise into strikes.
const DRIFT_VIOLATION_FLOOR: f64 = 1e-4;

impl QuickSel {
    /// Creates an estimator with the paper-default configuration.
    pub fn new(domain: Domain) -> Self {
        Self::with_config(domain, QuickSelConfig::default())
    }

    /// Creates an estimator with an explicit configuration.
    pub fn with_config(domain: Domain, config: QuickSelConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        Self {
            domain: Arc::new(domain),
            config,
            queries: Vec::new(),
            point_pool: Vec::new(),
            model: None,
            rng,
            pending_since_refine: 0,
            last_report: None,
            last_error: None,
            version: 0,
            trainer: None,
            point_counts: Vec::new(),
            compacted_len: 0,
            compact_counts: Vec::new(),
            evicted_total: 0,
            evicted_since_refine: 0,
            drift_resamples: 0,
            violation_ewma: f64::NAN,
            drift_strikes: 0,
            force_cold: false,
            history_dirty: false,
            prior_kept: false,
        }
    }

    /// Starts a fluent configuration, e.g.
    ///
    /// ```
    /// use quicksel_core::{QuickSel, RefinePolicy};
    /// use quicksel_geometry::Domain;
    ///
    /// let domain = Domain::of_reals(&[("x", 0.0, 1.0)]);
    /// let qs = QuickSel::builder(domain)
    ///     .refine_policy(RefinePolicy::EveryK(100))
    ///     .lambda(1e6)
    ///     .seed(7)
    ///     .build();
    /// assert_eq!(qs.config().seed, 7);
    /// ```
    pub fn builder(domain: Domain) -> QuickSelBuilder {
        QuickSelBuilder { domain, config: QuickSelConfig::default() }
    }

    /// The estimator's domain.
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// The active configuration.
    pub fn config(&self) -> &QuickSelConfig {
        &self.config
    }

    /// Number of queries observed so far.
    pub fn observed_count(&self) -> usize {
        self.queries.len()
    }

    /// The observed queries so far, in arrival order.
    pub fn observed(&self) -> &[ObservedQuery] {
        &self.queries
    }

    /// Observations ingested since the last successful refine.
    pub fn pending_feedback(&self) -> usize {
        self.pending_since_refine
    }

    /// Retained feedback-history length (≤ `config.max_history`; merged
    /// summaries count as one entry each).
    pub fn history_len(&self) -> usize {
        self.queries.len()
    }

    /// History entries evicted (merged away) over this estimator's
    /// lifetime.
    pub fn evicted_rows(&self) -> u64 {
        self.evicted_total
    }

    /// Cold resamples forced by the drift detector so far.
    pub fn drift_resamples(&self) -> u64 {
        self.drift_resamples
    }

    /// Diagnostics from the most recent training run.
    pub fn last_report(&self) -> Option<&TrainReport> {
        self.last_report.as_ref()
    }

    /// The current model, if trained.
    pub fn model(&self) -> Option<&UniformMixtureModel> {
        self.model.as_deref()
    }

    /// Training version: 0 before the first successful refine, then
    /// incremented by each retrain.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The most recent training failure from an automatic refine inside
    /// `observe_batch` (or an explicit [`refine`](Self::refine) call).
    /// Cleared by the next successful refine.
    pub fn last_error(&self) -> Option<&EstimatorError> {
        self.last_error.as_ref()
    }

    /// Freezes the current model into an immutable, cheaply-cloneable
    /// snapshot for lock-free concurrent estimation.
    pub fn snapshot(&self) -> ModelSnapshot {
        ModelSnapshot::new(
            Arc::clone(&self.domain),
            self.model.clone(),
            self.version,
            self.queries.len(),
        )
    }

    /// Retrains the mixture model on everything observed so far.
    ///
    /// A **cold** refine runs the full §3.3 + §4 pipeline: sample
    /// `m = min(4n, 4000)` centers from the workload point pool, size
    /// their supports, assemble the QP, solve. While the subpopulation
    /// budget `m` is unchanged (and the analytic trainer is active), a
    /// **warm** refine reuses the cached supports and assembly and folds
    /// only the new queries in as a rank-k update — orders of magnitude
    /// cheaper; [`last_report`](Self::last_report) records which path
    /// fired via `assembly_reused`/`rows_appended`, and the returned
    /// [`RefineOutcome::Retrained`] carries the `incremental` flag. The
    /// configured `warm_refine_limit` bounds how long the supports stay
    /// frozen before a cold resample.
    ///
    /// Returns [`RefineOutcome::UpToDate`] when there is nothing new to
    /// learn, [`RefineOutcome::KeptPrior`] when all observed predicates
    /// were degenerate, and a typed [`EstimatorError`] when the solver
    /// fails (the previous model is kept in that case).
    pub fn refine(&mut self) -> Result<RefineOutcome, EstimatorError> {
        self.enforce_history_budget();
        if self.queries.is_empty() {
            return Ok(RefineOutcome::UpToDate);
        }
        if self.pending_since_refine == 0 && !self.history_dirty {
            if self.model.is_some() {
                return Ok(RefineOutcome::UpToDate);
            }
            if self.prior_kept {
                // Everything observed so far was degenerate and has
                // already been consumed by a KeptPrior refine.
                return Ok(RefineOutcome::KeptPrior);
            }
        }
        let m = self.config.target_subpops(self.queries.len());
        let warm_ready = self.config.training == TrainingMethod::AnalyticPenalty
            && !self.force_cold
            && self.trainer.as_ref().is_some_and(|t| {
                t.subpop_count() == m
                    && t.trained_queries() <= self.queries.len()
                    && t.warm_refines() < self.config.warm_refine_limit
            });
        if warm_ready {
            let trainer = self.trainer.as_mut().expect("warm_ready checked trainer presence");
            let new_queries = &self.queries[trainer.trained_queries()..];
            return match trainer.refine(new_queries) {
                Ok((model, report)) => Ok(self.install(model, report, true)),
                Err(e) => {
                    // A failed warm solve falls back to a cold rebuild on
                    // the next attempt rather than wedging the cache.
                    self.trainer = None;
                    let err = EstimatorError::from(e);
                    self.last_error = Some(err.clone());
                    Err(err)
                }
            };
        }

        let subpops = build_subpopulations(
            &self.domain,
            &self.point_pool,
            m,
            self.config.size_neighbors,
            self.config.overlap_factor,
            &mut self.rng,
        );
        if subpops.is_empty() {
            // All observed predicates were degenerate; keep the prior and
            // mark the feedback consumed — retrying the full rebuild on
            // the same degenerate pool could never succeed.
            self.pending_since_refine = 0;
            self.history_dirty = false;
            self.prior_kept = true;
            return Ok(RefineOutcome::KeptPrior);
        }
        // A cold rebuild replaces (or, on failure, discards) any cached
        // trainer — a stale cache can never be legitimately reused and
        // would only pin O(m²) dead state.
        self.trainer = None;
        let cold = if self.config.training == TrainingMethod::AnalyticPenalty
            && self.config.warm_refine_limit > 0
        {
            IncrementalTrainer::cold(
                &self.domain,
                subpops,
                &self.queries,
                self.config.lambda,
                self.config.ridge_rel,
            )
            .map(|(trainer, model, report)| {
                self.trainer = Some(trainer);
                (model, report)
            })
        } else {
            train(
                &self.domain,
                subpops,
                &self.queries,
                self.config.training,
                self.config.lambda,
                self.config.ridge_rel,
            )
        };
        match cold {
            Ok((model, report)) => Ok(self.install(model, report, false)),
            Err(e) => {
                let err = EstimatorError::from(e);
                self.last_error = Some(err.clone());
                Err(err)
            }
        }
    }

    /// Publishes a freshly-trained model and its report.
    fn install(
        &mut self,
        model: UniformMixtureModel,
        mut report: TrainReport,
        incremental: bool,
    ) -> RefineOutcome {
        report.evicted_rows = self.evicted_since_refine;
        report.history_len = self.queries.len();
        self.evicted_since_refine = 0;
        self.update_drift(report.constraint_violation, incremental);
        let outcome = RefineOutcome::Retrained {
            params: model.len(),
            constraints: report.num_constraints,
            incremental,
        };
        self.model = Some(Arc::new(model));
        self.last_report = Some(report);
        self.pending_since_refine = 0;
        self.history_dirty = false;
        self.prior_kept = false;
        self.last_error = None;
        self.version += 1;
        outcome
    }

    /// Tracks the constraint-violation trend across refines. A warm
    /// refine whose violation breaks `drift_ratio ×` the EWMA baseline
    /// counts as a strike; `drift_patience` consecutive strikes force
    /// the next refine cold (resampling supports against the current
    /// workload). Cold rebuilds clear the baseline — it re-seeds from
    /// the *first warm* refine afterwards, because cold-fit violations
    /// (few pending rows, freshly placed supports) sit an order of
    /// magnitude below warm ones and would make every stable workload
    /// look like drift. A stable workload therefore lets warm refines
    /// run indefinitely.
    fn update_drift(&mut self, violation: f64, incremental: bool) {
        if !incremental {
            self.violation_ewma = f64::NAN;
            self.drift_strikes = 0;
            self.force_cold = false;
            return;
        }
        if self.config.drift_patience == usize::MAX || !violation.is_finite() {
            return;
        }
        let baseline = self.violation_ewma;
        if baseline.is_nan() {
            self.violation_ewma = violation;
            return;
        }
        if violation > self.config.drift_ratio * baseline.max(DRIFT_VIOLATION_FLOOR) {
            self.drift_strikes += 1;
            if self.drift_strikes as usize >= self.config.drift_patience.max(1) {
                self.force_cold = true;
                self.drift_resamples += 1;
                self.drift_strikes = 0;
            }
        } else {
            self.drift_strikes = 0;
            self.violation_ewma =
                DRIFT_EWMA_ALPHA * violation + (1.0 - DRIFT_EWMA_ALPHA) * baseline;
        }
    }

    /// Cap on the compacted summary prefix: an eighth of the budget,
    /// but at least 2 so a merge pair always exists.
    fn compact_prefix_cap(budget: usize) -> usize {
        (budget / 8).max(2)
    }

    /// Enforces `config.max_history` by merge-oldest compaction: the
    /// oldest entries graduate into a bounded summary prefix, and within
    /// that prefix the adjacent pair whose bounding box inflates least
    /// is merged (hull rect, count-weighted selectivity) until the
    /// history fits the budget. Merging never consumes the RNG and the
    /// pool is downsampled deterministically, so replayed feedback
    /// streams stay bit-exact; with `max_history = usize::MAX` this is
    /// a no-op by construction.
    fn enforce_history_budget(&mut self) {
        let budget = self.config.max_history.max(1);
        while self.queries.len() > budget {
            let cap = Self::compact_prefix_cap(budget).min(self.queries.len());
            while self.compacted_len < cap {
                self.compact_counts.push(1);
                self.compacted_len += 1;
            }
            let mut best = 0usize;
            let mut best_cost = f64::INFINITY;
            for i in 0..self.compacted_len - 1 {
                let a = &self.queries[i].rect;
                let b = &self.queries[i + 1].rect;
                let cost = a.hull(b).volume() - a.volume() - b.volume();
                if cost < best_cost {
                    best_cost = cost;
                    best = i;
                }
            }
            self.merge_history_pair(best);
        }
    }

    /// Merges history entries `i` and `i + 1` (both inside the compacted
    /// prefix) into one summary constraint, keeping the trainer's cached
    /// system, the point pool, and all bookkeeping aligned.
    fn merge_history_pair(&mut self, i: usize) {
        let j = i + 1;
        let merged_rect = self.queries[i].rect.hull(&self.queries[j].rect);
        // Mass is additive, so the hull's selectivity is estimated by
        // inclusion–exclusion (overlap mass approximated as uniform
        // within each box), clamped into the bracket every union obeys:
        // at least the bigger member, at most the sum. A count-weighted
        // *mean* here would be badly wrong — as summaries grow toward
        // the domain their constraint would fight the implicit `(B0, 1)`
        // row, deflating the whole model.
        let (sa, sb) = (self.queries[i].selectivity, self.queries[j].selectivity);
        let (va, vb) = (self.queries[i].rect.volume(), self.queries[j].rect.volume());
        let vi = self.queries[i].rect.intersection_volume(&self.queries[j].rect);
        let overlap = if va > 0.0 && vb > 0.0 { 0.5 * (sa * vi / va + sb * vi / vb) } else { 0.0 };
        let merged_sel = (sa + sb - overlap).clamp(sa.max(sb), (sa + sb).min(1.0)).clamp(0.0, 1.0);
        let merged = ObservedQuery::new(merged_rect, merged_sel);

        // Mirror the edit into the trainer's cached system when both
        // entries are already folded in. A pair straddling the trained
        // boundary (only possible when refines lag far behind ingest)
        // cannot be edited consistently — drop the cache and let the
        // next refine rebuild cold.
        let trained = self.trainer.as_ref().map_or(0, |t| t.trained_queries());
        if j < trained {
            let edit_ok = self
                .trainer
                .as_mut()
                .expect("trained > 0 implies a trainer")
                .apply_history_edit(i, j, &merged)
                .is_ok();
            if !edit_ok {
                self.trainer = None;
            }
        } else if i < trained {
            self.trainer = None;
        } else {
            // Both entries were still pending; the merged one still is.
            self.pending_since_refine = self.pending_since_refine.saturating_sub(1);
        }

        // Splice the pool: the two spans are adjacent, so their union is
        // contiguous; downsample it deterministically (strided — no RNG)
        // back to the per-query point budget.
        let off: usize = self.point_counts[..i].iter().map(|&c| c as usize).sum();
        let total = self.point_counts[i] as usize + self.point_counts[j] as usize;
        let keep = total.min(self.config.points_per_query);
        if keep < total {
            let kept: Vec<Vec<f64>> =
                (0..keep).map(|t| self.point_pool[off + t * total / keep].clone()).collect();
            self.point_pool.splice(off..off + total, kept);
        }
        self.point_counts[i] = keep as u32;
        self.point_counts.remove(j);

        self.queries[i] = merged;
        self.queries.remove(j);
        let cj = self.compact_counts[j];
        self.compact_counts[i] += cj;
        self.compact_counts.remove(j);
        self.compacted_len -= 1;

        self.evicted_total += 1;
        self.evicted_since_refine += 1;
        self.history_dirty = true;
    }

    /// Convenience: estimate a conjunctive [`Predicate`].
    pub fn estimate_pred(&self, pred: &Predicate) -> f64 {
        self.estimate(&pred.to_rect(&self.domain))
    }

    /// Captures the estimator's complete learning state for persistence:
    /// observed queries, the workload point pool, the trained model, the
    /// RNG mid-stream, and the cached incremental trainer. Restoring the
    /// capture with [`try_from_state`](Self::try_from_state) yields an
    /// estimator that is *bit-identical* going forward — same estimates,
    /// same models after any future feedback, and a **warm** first refine
    /// (the trainer's cached assembly rides along).
    ///
    /// Transient diagnostics (`last_report`, `last_error`) are not
    /// captured; they restore as `None`.
    pub fn export_state(&self) -> QuickSelState {
        QuickSelState {
            domain: (*self.domain).clone(),
            config: self.config.clone(),
            queries: self.queries.clone(),
            point_pool: self.point_pool.clone(),
            point_counts: self.point_counts.clone(),
            compacted_len: self.compacted_len,
            compact_counts: self.compact_counts.clone(),
            evicted_total: self.evicted_total,
            drift_resamples: self.drift_resamples,
            violation_ewma: self.violation_ewma,
            drift_strikes: self.drift_strikes,
            force_cold: self.force_cold,
            history_dirty: self.history_dirty,
            model: self.model.as_deref().map(|m| (m.rects().to_vec(), m.weights().to_vec())),
            rng_state: self.rng.state(),
            pending_since_refine: self.pending_since_refine,
            version: self.version,
            trainer: self.trainer.as_ref().map(IncrementalTrainer::export_state),
        }
    }

    /// Rebuilds an estimator from an exported capture, validating every
    /// cross-field invariant first (dimensionalities, finite weights,
    /// positive support volumes, trainer/query consistency). Inconsistent
    /// captures — hand-edited, corrupted past the checksums, or from a
    /// buggy encoder — reject with a typed [`StateError`] instead of
    /// panicking in a model constructor downstream.
    pub fn try_from_state(state: QuickSelState) -> Result<Self, StateError> {
        let invalid = |context: &'static str| StateError::Invalid { context };
        let dim = state.domain.dim();
        for q in &state.queries {
            if q.rect.dim() != dim {
                return Err(invalid("observed query dimensionality differs from the domain"));
            }
            if !q.is_valid() {
                return Err(invalid("observed query has an invalid selectivity"));
            }
        }
        for p in &state.point_pool {
            if p.len() != dim {
                return Err(invalid("point pool entry dimensionality differs from the domain"));
            }
            if !p.iter().all(|x| x.is_finite()) {
                return Err(invalid("point pool entry contains non-finite coordinates"));
            }
        }
        let model = match state.model {
            None => None,
            Some((rects, weights)) => {
                if rects.is_empty() || rects.len() != weights.len() {
                    return Err(invalid("model supports and weights disagree in length"));
                }
                for r in &rects {
                    if r.dim() != dim {
                        return Err(invalid(
                            "model support dimensionality differs from the domain",
                        ));
                    }
                    let v = r.volume();
                    if !(v.is_finite() && v > 0.0) {
                        return Err(invalid("model support has non-positive volume"));
                    }
                }
                if !weights.iter().all(|w| w.is_finite()) {
                    return Err(invalid("model weights contain non-finite entries"));
                }
                Some(Arc::new(UniformMixtureModel::new(rects, weights)))
            }
        };
        if model.is_none() && state.version != 0 {
            return Err(invalid("nonzero training version without a trained model"));
        }
        if state.pending_since_refine > state.queries.len() {
            return Err(invalid("pending feedback exceeds the observed-query history"));
        }
        if state.point_counts.len() != state.queries.len() {
            return Err(invalid("point counts do not align with the query history"));
        }
        let counted: usize = state.point_counts.iter().map(|&c| c as usize).sum();
        if counted != state.point_pool.len() {
            return Err(invalid("point counts do not sum to the pool size"));
        }
        if state.compacted_len > state.queries.len()
            || state.compact_counts.len() != state.compacted_len
            || state.compact_counts.contains(&0)
        {
            return Err(invalid("compacted history prefix is inconsistent"));
        }
        if state.violation_ewma.is_infinite() {
            return Err(invalid("violation baseline is not NaN-or-finite"));
        }
        let trainer = match state.trainer {
            None => None,
            Some(ts) => {
                let t = IncrementalTrainer::try_from_state(ts)?;
                if t.subpops().first().is_some_and(|r| r.dim() != dim) {
                    return Err(invalid("trainer support dimensionality differs from the domain"));
                }
                if t.trained_queries() > state.queries.len() {
                    return Err(invalid("trainer has folded in more queries than were observed"));
                }
                Some(t)
            }
        };
        Ok(Self {
            domain: Arc::new(state.domain),
            config: state.config,
            queries: state.queries,
            point_pool: state.point_pool,
            model,
            rng: StdRng::from_state(state.rng_state),
            pending_since_refine: state.pending_since_refine,
            last_report: None,
            last_error: None,
            version: state.version,
            trainer,
            point_counts: state.point_counts,
            compacted_len: state.compacted_len,
            compact_counts: state.compact_counts,
            evicted_total: state.evicted_total,
            evicted_since_refine: 0,
            drift_resamples: state.drift_resamples,
            violation_ewma: state.violation_ewma,
            drift_strikes: state.drift_strikes,
            force_cold: state.force_cold,
            history_dirty: state.history_dirty,
            prior_kept: false,
        })
    }
}

impl Estimate for QuickSel {
    fn name(&self) -> &'static str {
        "QuickSel"
    }

    fn estimate(&self, rect: &Rect) -> f64 {
        // Same read path as ModelSnapshot: trained model or the uniform
        // prior before the first successful refine.
        crate::snapshot::estimate_model_or_prior(&self.domain, self.model.as_deref(), rect)
    }

    /// Batched estimation: the model is frozen into SoA form **once per
    /// call** and the whole batch runs through the blocked kernel
    /// (term-order identical to the scalar path, so results compare
    /// equal). Snapshots pre-freeze at publish time instead; a live
    /// estimator freezes here because its model can change between
    /// calls.
    fn estimate_many_into(&self, rects: &[Rect], out: &mut Vec<f64>) {
        match self.model.as_deref() {
            // One-element batches skip the freeze: the layout pass would
            // cost more than it amortizes.
            Some(m) if rects.len() > 1 => FrozenModel::new(m).estimate_many_into(rects, out),
            _ => {
                out.clear();
                out.reserve(rects.len());
                out.extend(rects.iter().map(|r| self.estimate(r)));
            }
        }
    }

    fn param_count(&self) -> usize {
        // The learned parameters are the subpopulation weights (m of them,
        // = min(4n, 4000) under the default policy) — Figure 4's y-axis.
        self.model.as_ref().map_or(0, |m| m.len())
    }
}

impl Learn for QuickSel {
    fn observe_batch(&mut self, batch: &[ObservedQuery]) {
        let mut ingested = 0usize;
        let mut rejected = None;
        for (index, query) in batch.iter().enumerate() {
            // Invalid feedback (NaN / out-of-range selectivity) must not
            // reach the QP right-hand side; skip it and record the
            // rejection instead of training on garbage.
            if !query.is_valid() {
                rejected =
                    Some(EstimatorError::InvalidFeedback { index, selectivity: query.selectivity });
                continue;
            }
            let pts = workload_points(&query.rect, self.config.points_per_query, &mut self.rng);
            self.point_counts.push(pts.len() as u32);
            self.point_pool.extend(pts);
            self.queries.push(query.clone());
            ingested += 1;
        }
        self.pending_since_refine += ingested;
        self.enforce_history_budget();
        let retrain = match self.config.refine_policy {
            RefinePolicy::EveryQuery => ingested > 0,
            RefinePolicy::EveryK(k) => self.pending_since_refine >= k.max(1),
            RefinePolicy::Manual => false,
        };
        if retrain && self.refine().is_err() {
            // Training failures (pathological degenerate workloads) keep
            // the previous model rather than panicking the host DBMS; the
            // failure is retrievable through `last_error`.
        }
        // Recorded after any auto-refine so a successful retrain of the
        // valid remainder doesn't erase the rejection signal.
        if let Some(e) = rejected {
            self.last_error = Some(e);
        }
    }

    fn refine(&mut self) -> Result<RefineOutcome, EstimatorError> {
        QuickSel::refine(self)
    }

    fn last_error(&self) -> Option<&EstimatorError> {
        QuickSel::last_error(self)
    }

    fn training_version(&self) -> u64 {
        self.version
    }

    fn history_len(&self) -> usize {
        QuickSel::history_len(self)
    }

    fn evicted_rows(&self) -> u64 {
        QuickSel::evicted_rows(self)
    }

    fn drift_resamples(&self) -> u64 {
        QuickSel::drift_resamples(self)
    }
}

impl SnapshotSource for QuickSel {
    fn snapshot_shared(&self) -> Arc<dyn Estimate + Send + Sync> {
        Arc::new(self.snapshot())
    }
}

/// Fluent configuration for [`QuickSel`]; created by
/// [`QuickSel::builder`]. Unset knobs keep the paper defaults.
#[derive(Debug, Clone)]
pub struct QuickSelBuilder {
    domain: Domain,
    config: QuickSelConfig,
}

impl QuickSelBuilder {
    /// Penalty weight λ of Problem 3 (paper: `10⁶`).
    pub fn lambda(mut self, lambda: f64) -> Self {
        self.config.lambda = lambda;
        self
    }

    /// Relative Tikhonov ridge on the analytic solve (0 = the paper's
    /// unregularized closed form).
    pub fn ridge_rel(mut self, ridge_rel: f64) -> Self {
        self.config.ridge_rel = ridge_rel;
        self
    }

    /// Random points generated inside each observed predicate (paper: 10).
    pub fn points_per_query(mut self, points: usize) -> Self {
        self.config.points_per_query = points;
        self
    }

    /// Subpopulations per observed query before the cap (paper: 4).
    pub fn subpops_per_query(mut self, subpops: usize) -> Self {
        self.config.subpops_per_query = subpops;
        self
    }

    /// Hard cap on the number of subpopulations (paper: 4000).
    pub fn max_subpops(mut self, max: usize) -> Self {
        self.config.max_subpops = max;
        self
    }

    /// Neighbours averaged when sizing a subpopulation (paper: 10).
    pub fn size_neighbors(mut self, k: usize) -> Self {
        self.config.size_neighbors = k;
        self
    }

    /// Multiplier on the neighbour distance when sizing supports.
    pub fn overlap_factor(mut self, factor: f64) -> Self {
        self.config.overlap_factor = factor;
        self
    }

    /// Retraining cadence.
    pub fn refine_policy(mut self, policy: RefinePolicy) -> Self {
        self.config.refine_policy = policy;
        self
    }

    /// Maximum consecutive warm (incremental) refines before a full
    /// rebuild resamples subpopulations; 0 disables the incremental
    /// path. The default (`usize::MAX`) leaves resampling to drift
    /// detection instead of a blind counter.
    pub fn warm_refine_limit(mut self, limit: usize) -> Self {
        self.config.warm_refine_limit = limit;
        self
    }

    /// Budget on retained feedback history; older entries compact by
    /// merging once it is exceeded. `usize::MAX` (the default) retains
    /// everything.
    pub fn max_history(mut self, budget: usize) -> Self {
        self.config.max_history = budget;
        self
    }

    /// Violation-over-baseline ratio that counts a warm refine as a
    /// drift strike.
    pub fn drift_ratio(mut self, ratio: f64) -> Self {
        self.config.drift_ratio = ratio;
        self
    }

    /// Consecutive drift strikes before a forced cold resample;
    /// `usize::MAX` disables drift detection.
    pub fn drift_patience(mut self, patience: usize) -> Self {
        self.config.drift_patience = patience;
        self
    }

    /// Weight optimizer (analytic penalty vs. iterative standard QP).
    pub fn training(mut self, method: TrainingMethod) -> Self {
        self.config.training = method;
        self
    }

    /// RNG seed for point generation and sampling.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Pins the subpopulation budget to a fixed `m` instead of the `4·n`
    /// default (the §5.6 parameter-count study).
    pub fn fixed_subpops(mut self, m: usize) -> Self {
        self.config = self.config.with_fixed_subpops(m);
        self
    }

    /// Replaces the accumulated configuration wholesale.
    pub fn config(mut self, config: QuickSelConfig) -> Self {
        self.config = config;
        self
    }

    /// Builds the estimator.
    pub fn build(self) -> QuickSel {
        QuickSel::with_config(self.domain, self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrainingMethod;
    use quicksel_data::datasets::gaussian::gaussian_table;
    use quicksel_data::workload::{CenterMode, QueryGenerator, RectWorkload, ShiftMode};
    use quicksel_data::{mean_rel_error_pct, Table};

    fn domain() -> Domain {
        Domain::of_reals(&[("x", 0.0, 10.0), ("y", 0.0, 10.0)])
    }

    #[test]
    fn prior_is_uniform_before_observations() {
        let qs = QuickSel::new(domain());
        let q = Rect::from_bounds(&[(0.0, 5.0), (0.0, 10.0)]);
        assert!((qs.estimate(&q) - 0.5).abs() < 1e-12);
        assert_eq!(qs.param_count(), 0);
        assert_eq!(qs.version(), 0);
    }

    #[test]
    fn observing_retrains_under_default_policy() {
        let mut qs = QuickSel::new(domain());
        let q = ObservedQuery::new(Rect::from_bounds(&[(0.0, 5.0), (0.0, 5.0)]), 0.9);
        qs.observe(&q);
        assert_eq!(qs.observed_count(), 1);
        assert!(qs.model().is_some());
        assert!(qs.last_error().is_none());
        assert_eq!(qs.version(), 1);
        assert_eq!(qs.param_count(), 4); // min(4·1, 4000)
                                         // The training constraint is reproduced.
        assert!((qs.estimate(&q.rect) - 0.9).abs() < 0.05);
    }

    #[test]
    fn manual_policy_defers_training() {
        let mut qs = QuickSel::builder(domain()).refine_policy(RefinePolicy::Manual).build();
        let q = ObservedQuery::new(Rect::from_bounds(&[(0.0, 5.0), (0.0, 5.0)]), 0.9);
        qs.observe(&q);
        assert!(qs.model().is_none());
        assert_eq!(qs.pending_feedback(), 1);
        let outcome = qs.refine().unwrap();
        assert!(outcome.retrained());
        assert!(qs.model().is_some());
        assert_eq!(qs.pending_feedback(), 0);
        // A second refine with no new feedback is a no-op.
        assert_eq!(qs.refine().unwrap(), RefineOutcome::UpToDate);
        assert_eq!(qs.version(), 1);
    }

    #[test]
    fn every_k_policy_batches() {
        let mut qs = QuickSel::builder(domain()).refine_policy(RefinePolicy::EveryK(3)).build();
        let q = ObservedQuery::new(Rect::from_bounds(&[(0.0, 5.0), (0.0, 5.0)]), 0.9);
        qs.observe(&q);
        qs.observe(&q);
        assert!(qs.model().is_none());
        qs.observe(&q);
        assert!(qs.model().is_some());
    }

    #[test]
    fn observe_batch_triggers_policy_once_per_batch() {
        let mut qs = QuickSel::builder(domain()).refine_policy(RefinePolicy::EveryK(3)).build();
        let q = ObservedQuery::new(Rect::from_bounds(&[(0.0, 5.0), (0.0, 5.0)]), 0.9);
        // A batch crossing the threshold retrains exactly once.
        qs.observe_batch(&[q.clone(), q.clone(), q.clone(), q.clone()]);
        assert_eq!(qs.version(), 1);
        assert_eq!(qs.observed_count(), 4);
        assert_eq!(qs.param_count(), 16);
    }

    #[test]
    fn batch_matches_sequential_observes_under_manual_policy() {
        let table = gaussian_table(2, 0.4, 5_000, 91);
        let mut gen =
            RectWorkload::new(table.domain().clone(), 19, ShiftMode::Random, CenterMode::DataRow)
                .with_width_frac(0.15, 0.45);
        let train = gen.take_queries(&table, 30);
        let probes = gen.take_queries(&table, 20);

        let mut one_by_one =
            QuickSel::builder(table.domain().clone()).refine_policy(RefinePolicy::Manual).build();
        for q in &train {
            one_by_one.observe(q);
        }
        one_by_one.refine().unwrap();

        let mut batched =
            QuickSel::builder(table.domain().clone()).refine_policy(RefinePolicy::Manual).build();
        batched.observe_batch(&train);
        batched.refine().unwrap();

        // Identical feedback stream + identical RNG consumption ⇒
        // identical models, bit for bit.
        for p in &probes {
            assert_eq!(one_by_one.estimate(&p.rect), batched.estimate(&p.rect));
        }
    }

    #[test]
    fn degenerate_observations_keep_prior() {
        let mut qs = QuickSel::new(domain());
        let degenerate = ObservedQuery::new(Rect::from_bounds(&[(5.0, 5.0), (0.0, 10.0)]), 0.0);
        qs.observe(&degenerate);
        // No points could be generated, so we remain on the prior.
        assert!(qs.model().is_none());
        assert!(qs.last_error().is_none(), "degenerate feedback is not an error");
        assert_eq!(qs.refine().unwrap(), RefineOutcome::KeptPrior);
        let q = Rect::from_bounds(&[(0.0, 10.0), (0.0, 10.0)]);
        assert_eq!(qs.estimate(&q), 1.0);
        // Regression: `KeptPrior` consumes the degenerate feedback. It
        // used to leave `pending_since_refine` nonzero forever, so every
        // later refine re-ran the full (futile) subpopulation build.
        assert_eq!(qs.pending_feedback(), 0, "KeptPrior must consume degenerate feedback");
        assert_eq!(qs.refine().unwrap(), RefineOutcome::KeptPrior);
        assert_eq!(qs.pending_feedback(), 0);
    }

    #[test]
    fn snapshot_is_frozen_while_source_trains_on() {
        let mut qs = QuickSel::new(domain());
        let q1 = ObservedQuery::new(Rect::from_bounds(&[(0.0, 5.0), (0.0, 5.0)]), 0.9);
        qs.observe(&q1);
        let snap = qs.snapshot();
        assert_eq!(snap.version(), 1);
        let frozen = snap.estimate(&q1.rect);

        // Contradictory later feedback moves the live estimator…
        let q2 = ObservedQuery::new(Rect::from_bounds(&[(0.0, 5.0), (0.0, 5.0)]), 0.1);
        for _ in 0..5 {
            qs.observe(&q2);
        }
        assert!(qs.version() > 1);
        assert!((qs.estimate(&q1.rect) - frozen).abs() > 0.2);
        // …but the snapshot still answers from its frozen model.
        assert_eq!(snap.estimate(&q1.rect), frozen);
        assert_eq!(snap.version(), 1);
    }

    #[test]
    fn snapshot_source_returns_shared_estimate() {
        let mut qs = QuickSel::new(domain());
        qs.observe(&ObservedQuery::new(Rect::from_bounds(&[(0.0, 5.0), (0.0, 5.0)]), 0.9));
        let shared = qs.snapshot_shared();
        assert_eq!(shared.name(), "QuickSel");
        assert_eq!(shared.param_count(), 4);
    }

    #[test]
    fn builder_covers_every_knob() {
        let qs = QuickSel::builder(domain())
            .lambda(1e5)
            .ridge_rel(1e-7)
            .points_per_query(5)
            .subpops_per_query(2)
            .max_subpops(100)
            .size_neighbors(4)
            .overlap_factor(1.5)
            .refine_policy(RefinePolicy::EveryK(10))
            .training(TrainingMethod::StandardQp)
            .seed(99)
            .warm_refine_limit(7)
            .max_history(500)
            .drift_ratio(4.0)
            .drift_patience(5)
            .build();
        let c = qs.config();
        assert_eq!(c.lambda, 1e5);
        assert_eq!(c.ridge_rel, 1e-7);
        assert_eq!(c.points_per_query, 5);
        assert_eq!(c.subpops_per_query, 2);
        assert_eq!(c.max_subpops, 100);
        assert_eq!(c.size_neighbors, 4);
        assert_eq!(c.overlap_factor, 1.5);
        assert_eq!(c.refine_policy, RefinePolicy::EveryK(10));
        assert_eq!(c.training, TrainingMethod::StandardQp);
        assert_eq!(c.seed, 99);
        assert_eq!(c.warm_refine_limit, 7);
        assert_eq!(c.max_history, 500);
        assert_eq!(c.drift_ratio, 4.0);
        assert_eq!(c.drift_patience, 5);
        let pinned = QuickSel::builder(domain()).fixed_subpops(64).build();
        assert_eq!(pinned.config().target_subpops(1_000_000), 64);
    }

    #[test]
    fn fixed_budget_refines_go_warm_after_the_cold_build() {
        let mut qs = QuickSel::builder(domain())
            .refine_policy(RefinePolicy::Manual)
            .fixed_subpops(8)
            .build();
        qs.observe(&ObservedQuery::new(Rect::from_bounds(&[(0.0, 5.0), (0.0, 5.0)]), 0.9));
        let first = qs.refine().unwrap();
        assert!(matches!(first, RefineOutcome::Retrained { incremental: false, .. }), "{first:?}");
        let report = qs.last_report().unwrap();
        assert!(!report.assembly_reused);

        qs.observe(&ObservedQuery::new(Rect::from_bounds(&[(2.0, 7.0), (2.0, 7.0)]), 0.4));
        let second = qs.refine().unwrap();
        assert!(matches!(second, RefineOutcome::Retrained { incremental: true, .. }), "{second:?}");
        let report = qs.last_report().unwrap();
        assert!(report.assembly_reused);
        assert_eq!(report.rows_appended, 1);
        assert_eq!(qs.version(), 2);
        // Both observations are reproduced by the warm-refined model.
        assert!((qs.estimate(&Rect::from_bounds(&[(2.0, 7.0), (2.0, 7.0)])) - 0.4).abs() < 0.05);
    }

    #[test]
    fn warm_refine_limit_forces_cold_resample() {
        let mut qs = QuickSel::builder(domain())
            .refine_policy(RefinePolicy::Manual)
            .fixed_subpops(8)
            .warm_refine_limit(2)
            .build();
        let mut outcomes = Vec::new();
        for i in 0..5 {
            let lo = (i % 3) as f64;
            qs.observe(&ObservedQuery::new(
                Rect::from_bounds(&[(lo, lo + 4.0), (0.0, 6.0)]),
                0.2 + 0.1 * (i % 4) as f64,
            ));
            outcomes.push(qs.refine().unwrap());
        }
        let incremental: Vec<bool> = outcomes
            .iter()
            .map(|o| matches!(o, RefineOutcome::Retrained { incremental: true, .. }))
            .collect();
        // cold, warm, warm (limit reached), cold (resample), warm.
        assert_eq!(incremental, vec![false, true, true, false, true], "{outcomes:?}");
    }

    #[test]
    fn drift_detector_forces_cold_resample_on_workload_shift() {
        // Phase 1: a stable, self-consistent workload in the lower-left
        // quadrant — warm refines establish a violation baseline.
        let mut qs = QuickSel::builder(domain())
            .refine_policy(RefinePolicy::Manual)
            .fixed_subpops(16)
            .drift_ratio(3.0)
            .drift_patience(2)
            .build();
        for i in 0..10 {
            let lo = (i % 4) as f64 * 0.5;
            qs.observe(&ObservedQuery::new(Rect::from_bounds(&[(lo, lo + 2.0), (0.0, 4.0)]), 0.08));
            qs.refine().unwrap();
        }
        assert_eq!(qs.drift_resamples(), 0, "stable workload must not trip the detector");
        let warm = qs.last_report().unwrap();
        assert!(warm.assembly_reused, "phase 1 must end on the warm path");

        // Phase 2: the workload jumps to the opposite corner with
        // contradictory selectivities; the supports sampled for phase 1
        // fit it badly, violations break the baseline, and after
        // `drift_patience` strikes a refine goes cold (resampling
        // against the shifted workload).
        let mut saw_cold = false;
        for i in 0..12 {
            let lo = 6.0 + (i % 4) as f64 * 0.5;
            qs.observe(&ObservedQuery::new(Rect::from_bounds(&[(lo, lo + 2.0), (6.0, 10.0)]), 0.9));
            let outcome = qs.refine().unwrap();
            if matches!(outcome, RefineOutcome::Retrained { incremental: false, .. }) {
                saw_cold = true;
                break;
            }
        }
        assert!(saw_cold, "workload shift never forced a cold resample");
        assert!(qs.drift_resamples() >= 1);
        // The post-resample model serves the shifted region.
        let probe = Rect::from_bounds(&[(6.0, 8.0), (6.0, 10.0)]);
        assert!((qs.estimate(&probe) - 0.9).abs() < 0.3, "estimate {}", qs.estimate(&probe));
    }

    #[test]
    fn disabled_drift_patience_never_resamples() {
        let mut qs = QuickSel::builder(domain())
            .refine_policy(RefinePolicy::Manual)
            .fixed_subpops(16)
            .drift_patience(usize::MAX)
            .build();
        for i in 0..8 {
            let lo = if i < 4 { 0.0 } else { 7.0 };
            qs.observe(&ObservedQuery::new(
                Rect::from_bounds(&[(lo, lo + 2.0), (lo, lo + 2.0)]),
                if i < 4 { 0.05 } else { 0.95 },
            ));
            qs.refine().unwrap();
        }
        assert_eq!(qs.drift_resamples(), 0);
    }

    #[test]
    fn zero_warm_limit_disables_incremental_path() {
        let mut qs = QuickSel::builder(domain())
            .refine_policy(RefinePolicy::Manual)
            .fixed_subpops(8)
            .warm_refine_limit(0)
            .build();
        for i in 0..3 {
            let lo = i as f64;
            qs.observe(&ObservedQuery::new(Rect::from_bounds(&[(lo, lo + 4.0), (0.0, 6.0)]), 0.3));
            let outcome = qs.refine().unwrap();
            assert!(
                matches!(outcome, RefineOutcome::Retrained { incremental: false, .. }),
                "{outcome:?}"
            );
        }
    }

    fn learning_run(table: &Table, train_n: usize, cfg: QuickSelConfig) -> f64 {
        let mut gen =
            RectWorkload::new(table.domain().clone(), 7, ShiftMode::Random, CenterMode::DataRow)
                .with_width_frac(0.15, 0.45);
        let mut qs = QuickSel::with_config(table.domain().clone(), cfg);
        for q in gen.take_queries(table, train_n) {
            qs.observe(&q);
        }
        let test = gen.take_queries(table, 50);
        let pairs: Vec<(f64, f64)> =
            test.iter().map(|q| (q.selectivity, qs.estimate(&q.rect))).collect();
        mean_rel_error_pct(&pairs)
    }

    #[test]
    fn learns_gaussian_distribution() {
        let table = gaussian_table(2, 0.4, 20_000, 31);
        let mut gen =
            RectWorkload::new(table.domain().clone(), 7, ShiftMode::Random, CenterMode::DataRow)
                .with_width_frac(0.15, 0.45);
        let mut qs =
            QuickSel::builder(table.domain().clone()).refine_policy(RefinePolicy::Manual).build();
        qs.observe_batch(&gen.take_queries(&table, 100));
        qs.refine().unwrap();
        let test = gen.take_queries(&table, 50);
        let pairs: Vec<(f64, f64)> =
            test.iter().map(|q| (q.selectivity, qs.estimate(&q.rect))).collect();
        let err = mean_rel_error_pct(&pairs);
        // Paper reports low-single-digit % on the Gaussian workload after
        // 100 queries (Fig 7a); allow generous slack for the synthetic rig.
        assert!(err < 30.0, "relative error {err}%");
        // And we must beat the uninformed uniform prior by a wide margin.
        let prior_pairs: Vec<(f64, f64)> = test
            .iter()
            .map(|q| {
                let b0 = table.domain().full_rect();
                (q.selectivity, q.rect.volume() / b0.volume())
            })
            .collect();
        let prior_err = mean_rel_error_pct(&prior_pairs);
        assert!(err < 0.5 * prior_err, "learned {err}% vs prior {prior_err}%");
    }

    #[test]
    fn error_decreases_with_more_observations() {
        let table = gaussian_table(2, 0.4, 20_000, 33);
        let cfg = QuickSelConfig { refine_policy: RefinePolicy::EveryK(25), ..Default::default() };
        let few = learning_run(&table, 10, cfg.clone());
        let many = learning_run(&table, 150, cfg);
        assert!(
            many < few * 0.9,
            "error should drop with data: 10 queries → {few}%, 150 queries → {many}%"
        );
    }

    #[test]
    fn standard_qp_training_also_learns() {
        let table = gaussian_table(2, 0.4, 10_000, 35);
        let cfg = QuickSelConfig {
            training: TrainingMethod::StandardQp,
            refine_policy: RefinePolicy::EveryK(30),
            ..Default::default()
        };
        let err = learning_run(&table, 60, cfg);
        assert!(err < 60.0, "relative error {err}%");
    }

    #[test]
    fn estimates_always_in_unit_interval() {
        let table = gaussian_table(2, 0.6, 5_000, 37);
        let mut gen =
            RectWorkload::new(table.domain().clone(), 11, ShiftMode::Random, CenterMode::Uniform);
        let mut qs = QuickSel::new(table.domain().clone());
        for q in gen.take_queries(&table, 30) {
            qs.observe(&q);
        }
        for q in gen.take_queries(&table, 100) {
            let e = qs.estimate(&q.rect);
            assert!((0.0..=1.0).contains(&e), "estimate {e}");
        }
    }

    #[test]
    fn param_count_follows_four_n_rule() {
        let table = gaussian_table(2, 0.0, 2_000, 39);
        let mut gen =
            RectWorkload::new(table.domain().clone(), 13, ShiftMode::Random, CenterMode::DataRow);
        let mut qs = QuickSel::new(table.domain().clone());
        for (i, q) in gen.take_queries(&table, 20).iter().enumerate() {
            qs.observe(q);
            assert_eq!(qs.param_count(), 4 * (i + 1));
        }
    }

    #[test]
    fn estimate_many_is_consistent_with_estimate() {
        let table = gaussian_table(2, 0.5, 5_000, 40);
        let mut gen =
            RectWorkload::new(table.domain().clone(), 14, ShiftMode::Random, CenterMode::DataRow);
        let mut qs = QuickSel::new(table.domain().clone());
        for q in gen.take_queries(&table, 20) {
            qs.observe(&q);
        }
        let probes: Vec<Rect> = gen.take_queries(&table, 25).into_iter().map(|q| q.rect).collect();
        let many = qs.estimate_many(&probes);
        for (r, m) in probes.iter().zip(&many) {
            assert_eq!(qs.estimate(r), *m);
        }
    }
}
