//! # QuickSel — selectivity learning with uniform mixture models
//!
//! A Rust implementation of *"QuickSel: Quick Selectivity Learning with
//! Mixture Models"* (Park, Zhong, Mozafari — SIGMOD 2020).
//!
//! QuickSel is a **query-driven** selectivity estimator: it never scans the
//! data. Instead it observes `(predicate, actual selectivity)` pairs that a
//! DBMS collects for free at query-execution time and fits a *uniform
//! mixture model* of the joint tuple distribution:
//!
//! ```text
//! f(x) = Σ_z  w_z · g_z(x),      g_z uniform on hyperrectangle G_z
//! ```
//!
//! Estimation of a new predicate `B` is then just box intersections (§3.2):
//!
//! ```text
//! ŝ(B) = Σ_z  w_z · |G_z ∩ B| / |G_z|
//! ```
//!
//! Training finds the weights minimizing the L2 distance from the uniform
//! distribution subject to consistency with the observed selectivities
//! (§4.1), which reduces to the quadratic program of Theorem 1 and is
//! solved **analytically** through the penalized form of Problem 3:
//! `w* = (Q + λAᵀA)⁻¹ λAᵀs`.
//!
//! ## Quick start
//!
//! The API separates reading from writing: [`Estimate`](quicksel_data::Estimate)
//! is the immutable serving side, [`Learn`](quicksel_data::Learn) the
//! feedback/training side. Feedback arrives in
//! batches, retraining is fallible, and [`QuickSel::snapshot`] freezes the
//! model for lock-free concurrent estimation.
//!
//! ```
//! use quicksel_core::{QuickSel, RefinePolicy};
//! use quicksel_data::{Estimate, Learn, ObservedQuery};
//! use quicksel_geometry::{Domain, Predicate};
//!
//! let domain = Domain::of_reals(&[("x", 0.0, 10.0), ("y", 0.0, 10.0)]);
//! let mut qs = QuickSel::builder(domain.clone())
//!     .refine_policy(RefinePolicy::Manual)
//!     .seed(42)
//!     .build();
//!
//! // Feed a batch of query feedback: "x < 5" selected 50% of the rows.
//! let half = Predicate::new().less_than(0, 5.0).to_rect(&domain);
//! qs.observe_batch(&[ObservedQuery::new(half, 0.5)]);
//! let outcome = qs.refine().expect("training failed");
//! assert!(outcome.retrained());
//!
//! // Freeze an immutable snapshot; it estimates with &self only.
//! let snapshot = qs.snapshot();
//! let probe = Predicate::new().range(0, 0.0, 2.5).to_rect(&domain);
//! let est = snapshot.estimate(&probe);
//! assert!((0.0..=1.0).contains(&est));
//! ```

pub mod assembly;
pub mod batch;
pub mod config;
pub mod estimator;
pub mod model;
pub mod snapshot;
pub mod state;
pub mod subpop;
pub mod train;

pub use assembly::SubpopGrid;
pub use batch::FrozenModel;
pub use config::{QuickSelConfig, RefinePolicy, TrainingMethod};
pub use estimator::{QuickSel, QuickSelBuilder};
pub use model::UniformMixtureModel;
pub use snapshot::ModelSnapshot;
pub use state::{QuickSelState, StateError, TrainerState};
pub use train::{build_qp, build_qp_pruned, train, IncrementalTrainer, TrainReport};
