//! # QuickSel — selectivity learning with uniform mixture models
//!
//! A Rust implementation of *"QuickSel: Quick Selectivity Learning with
//! Mixture Models"* (Park, Zhong, Mozafari — SIGMOD 2020).
//!
//! QuickSel is a **query-driven** selectivity estimator: it never scans the
//! data. Instead it observes `(predicate, actual selectivity)` pairs that a
//! DBMS collects for free at query-execution time and fits a *uniform
//! mixture model* of the joint tuple distribution:
//!
//! ```text
//! f(x) = Σ_z  w_z · g_z(x),      g_z uniform on hyperrectangle G_z
//! ```
//!
//! Estimation of a new predicate `B` is then just box intersections (§3.2):
//!
//! ```text
//! ŝ(B) = Σ_z  w_z · |G_z ∩ B| / |G_z|
//! ```
//!
//! Training finds the weights minimizing the L2 distance from the uniform
//! distribution subject to consistency with the observed selectivities
//! (§4.1), which reduces to the quadratic program of Theorem 1 and is
//! solved **analytically** through the penalized form of Problem 3:
//! `w* = (Q + λAᵀA)⁻¹ λAᵀs`.
//!
//! ## Quick start
//!
//! ```
//! use quicksel_core::QuickSel;
//! use quicksel_data::{ObservedQuery, SelectivityEstimator};
//! use quicksel_geometry::{Domain, Predicate};
//!
//! let domain = Domain::of_reals(&[("x", 0.0, 10.0), ("y", 0.0, 10.0)]);
//! let mut qs = QuickSel::new(domain.clone());
//!
//! // Feed query feedback: "x < 5" selected 50% of the rows.
//! let half = Predicate::new().less_than(0, 5.0).to_rect(&domain);
//! qs.observe(&ObservedQuery::new(half, 0.5));
//!
//! // Ask for an estimate of a new predicate.
//! let q = Predicate::new().range(0, 0.0, 2.5).to_rect(&domain);
//! let est = qs.estimate(&q);
//! assert!(est >= 0.0 && est <= 1.0);
//! ```

pub mod config;
pub mod estimator;
pub mod model;
pub mod subpop;
pub mod train;

pub use config::{QuickSelConfig, RefinePolicy, TrainingMethod};
pub use estimator::QuickSel;
pub use model::UniformMixtureModel;
pub use train::{build_qp, train, TrainReport};
