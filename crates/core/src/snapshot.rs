//! Immutable, cheaply-cloneable snapshots of a trained QuickSel model.

use crate::batch::FrozenModel;
use crate::model::UniformMixtureModel;
use quicksel_data::Estimate;
use quicksel_geometry::{Domain, Rect};
use std::sync::Arc;

/// The shared QuickSel read path: the trained model when present,
/// otherwise the uniform prior `|B ∩ B0| / |B0|`. Both the live
/// [`QuickSel`](crate::QuickSel) estimator and its frozen snapshots
/// answer through this one function so they can never drift apart.
pub(crate) fn estimate_model_or_prior(
    domain: &Domain,
    model: Option<&UniformMixtureModel>,
    rect: &Rect,
) -> f64 {
    match model {
        Some(m) => m.estimate(rect),
        None => {
            let b0 = domain.full_rect();
            (rect.intersection_volume(&b0) / b0.volume()).clamp(0.0, 1.0)
        }
    }
}

/// A frozen view of a [`QuickSel`](crate::QuickSel) model at one point in
/// its training history.
///
/// Snapshots share the trained [`UniformMixtureModel`] through an [`Arc`],
/// so cloning one is two reference-count bumps — cheap enough to hand a
/// fresh copy to every planner thread. A snapshot taken before the first
/// successful refine answers with the uniform prior `|B ∩ B0| / |B0|`,
/// exactly like an untrained estimator.
///
/// All [`Estimate`] methods take `&self` and the snapshot is `Send +
/// Sync`: readers never observe a half-updated model, because later
/// training builds a *new* model rather than mutating the shared one.
#[derive(Debug, Clone)]
pub struct ModelSnapshot {
    domain: Arc<Domain>,
    model: Option<Arc<UniformMixtureModel>>,
    /// The model frozen into SoA form at snapshot time, so every batched
    /// estimate over this snapshot's lifetime reuses one layout pass.
    frozen: Option<Arc<FrozenModel>>,
    version: u64,
    observed: usize,
}

impl ModelSnapshot {
    pub(crate) fn new(
        domain: Arc<Domain>,
        model: Option<Arc<UniformMixtureModel>>,
        version: u64,
        observed: usize,
    ) -> Self {
        let frozen = model.as_deref().map(|m| Arc::new(FrozenModel::new(m)));
        Self { domain, model, frozen, version, observed }
    }

    /// Assembles a snapshot from externally-restored parts — the
    /// durability layer's decode path, which reconstructs published
    /// snapshots without a live estimator. The caller vouches that
    /// `model` (if any) was validated; the same freezing as
    /// [`QuickSel::snapshot`](crate::QuickSel::snapshot) applies, so the
    /// rebuilt snapshot serves batched estimates identically.
    pub fn from_parts(
        domain: Arc<Domain>,
        model: Option<Arc<UniformMixtureModel>>,
        version: u64,
        observed: usize,
    ) -> Self {
        Self::new(domain, model, version, observed)
    }

    /// The training version this snapshot was taken at: 0 before the
    /// first successful refine, then incremented by each retrain.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of queries the source estimator had observed.
    pub fn observed(&self) -> usize {
        self.observed
    }

    /// The underlying trained model, if any refine had succeeded.
    pub fn model(&self) -> Option<&UniformMixtureModel> {
        self.model.as_deref()
    }

    /// The estimation domain.
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// The SoA-frozen view of the model, if trained — the batched
    /// estimation kernel [`Estimate::estimate_many`] serves from.
    pub fn frozen(&self) -> Option<&FrozenModel> {
        self.frozen.as_deref()
    }
}

impl Estimate for ModelSnapshot {
    fn name(&self) -> &'static str {
        "QuickSel"
    }

    fn estimate(&self, rect: &Rect) -> f64 {
        estimate_model_or_prior(&self.domain, self.model.as_deref(), rect)
    }

    /// Batched estimation through the pre-frozen SoA kernel; before the
    /// first refine, the shared `estimate_model_or_prior` read path
    /// answers per rect, so the prior has exactly one implementation.
    /// Compares equal (`==`) to per-rect
    /// [`estimate`](Estimate::estimate) — the kernel's exactness
    /// contract, see [`crate::batch`].
    fn estimate_many_into(&self, rects: &[Rect], out: &mut Vec<f64>) {
        match &self.frozen {
            Some(f) => f.estimate_many_into(rects, out),
            None => {
                out.clear();
                out.reserve(rects.len());
                out.extend(rects.iter().map(|r| estimate_model_or_prior(&self.domain, None, r)));
            }
        }
    }

    /// Index-gather batching for routed dispatch: the sharded serving
    /// layer regroups one batch per shard as index lists and answers
    /// each group from this one snapshot without cloning a rect.
    fn estimate_gather(&self, rects: &[Rect], indexes: &[usize]) -> Vec<f64> {
        match &self.frozen {
            Some(f) => f.estimate_gather(rects, indexes),
            None => indexes
                .iter()
                .map(|&i| estimate_model_or_prior(&self.domain, None, &rects[i]))
                .collect(),
        }
    }

    fn param_count(&self) -> usize {
        self.model.as_ref().map_or(0, |m| m.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untrained_snapshot_serves_the_prior() {
        let domain = Domain::of_reals(&[("x", 0.0, 10.0)]);
        let snap = ModelSnapshot::new(Arc::new(domain), None, 0, 0);
        assert_eq!(snap.version(), 0);
        assert_eq!(snap.param_count(), 0);
        assert!((snap.estimate(&Rect::from_bounds(&[(0.0, 5.0)])) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn trained_snapshot_serves_the_model_and_clones_share_it() {
        let domain = Domain::of_reals(&[("x", 0.0, 10.0)]);
        let g = Rect::from_bounds(&[(0.0, 5.0)]);
        let model = Arc::new(UniformMixtureModel::new(vec![g.clone()], vec![1.0]));
        let snap = ModelSnapshot::new(Arc::new(domain), Some(Arc::clone(&model)), 3, 7);
        assert_eq!(snap.version(), 3);
        assert_eq!(snap.observed(), 7);
        assert_eq!(snap.param_count(), 1);
        assert!((snap.estimate(&g) - 1.0).abs() < 1e-12);
        let copy = snap.clone();
        // Clones alias the same model allocation.
        assert_eq!(Arc::strong_count(&model), 3);
        assert_eq!(copy.estimate(&g), snap.estimate(&g));
    }
}
