//! Batched, SoA-layout estimation kernel for the uniform mixture model.
//!
//! [`UniformMixtureModel`] stores its subpopulations array-of-structs:
//! every support is its own [`Rect`] owning a `Vec<Interval>`, so the hot
//! estimation loop chases one pointer per subpopulation and branches on
//! early exits. That is fine for a single probe, but planner-scale
//! serving estimates *batches* — B candidate-plan rectangles against the
//! same m subpopulations — and there the memory layout dominates.
//!
//! [`FrozenModel`] is the same model frozen into structure-of-arrays
//! form, plus a blocked rect×subpop intersection kernel over it.
//!
//! # SoA layout invariants
//!
//! For a model with `m` subpopulations over `d` dimensions:
//!
//! * `lo` and `hi` are **dimension-major** column arrays of length
//!   `d · m`: `lo[dim * m + z]` / `hi[dim * m + z]` are subpopulation
//!   `z`'s bounds in dimension `dim`. The kernel's inner loops therefore
//!   stream contiguous memory for a fixed dimension.
//! * `weights[z]` and `inv_volumes[z]` are parallel to the subpopulation
//!   index, with `inv_volumes[z] == 1.0 / |G_z|` exactly as the source
//!   model computed it.
//! * All supports share one dimensionality; `FrozenModel::new` panics on
//!   mixed-dimension supports (the source model cannot produce them).
//!
//! # Exactness contract
//!
//! The kernel is **term-order identical** to the scalar path
//! ([`UniformMixtureModel::estimate_raw`]): subpopulations are visited in
//! index order, each term is evaluated as `w * overlap * inv` with the
//! same association, and each overlap is the same left-to-right product
//! of per-dimension `(hi.min(q_hi) - lo.max(q_lo)).max(0.0)` lengths.
//! The scalar path's skip branches (`w == 0`, `overlap <= 0`) become a
//! branch-free select whose masked-out terms contribute exactly `0.0` —
//! which changes no partial sum's value (at most the sign of a zero sum,
//! and `0.0 == -0.0`). Every contributing IEEE-754 operation therefore
//! rounds identically and [`FrozenModel::estimate`] **compares equal**
//! (`==`, which is bitwise up to zero signs) to the scalar estimate —
//! the equivalence suite in `tests/batch_equivalence.rs` asserts exact
//! equality, not a tolerance. The optional `simd` feature keeps this
//! contract: it vectorizes only the element-wise overlap products (which
//! have no reassociation freedom) and leaves the reduction sequential.
//!
//! # Blocking
//!
//! `estimate_many` tiles the batch ([`RECT_TILE`] rectangles at a time)
//! and blocks the subpopulation axis ([`SUBPOP_BLOCK`] entries at a
//! time): each subpopulation block is loaded once and intersected with
//! every rectangle of the tile before moving on, so a large model
//! streams through cache `B / RECT_TILE` times instead of `B` times.

use crate::model::UniformMixtureModel;
use quicksel_geometry::Rect;

/// Subpopulations processed per kernel block: long enough to amortize
/// loop overhead and fill vector lanes, short enough that the per-block
/// overlap scratch stays in registers/L1.
pub const SUBPOP_BLOCK: usize = 64;

/// Rectangles processed per batch tile (see the module docs on blocking).
pub const RECT_TILE: usize = 16;

/// Minimum whole [`RECT_TILE`] groups per parallel chunk: planner-scale
/// batches (hundreds+ of rects) fan out across the workspace pool,
/// while small batches keep the serial kernel and its zero dispatch
/// overhead. Each chunk writes its own disjoint slice of the output, so
/// the fan-out cannot change a single result bit.
const PAR_MIN_TILES: usize = 4;

/// A [`UniformMixtureModel`] frozen into SoA column arrays, with batched
/// estimation kernels. See the module docs for the layout and exactness
/// invariants.
#[derive(Debug, Clone)]
pub struct FrozenModel {
    dim: usize,
    len: usize,
    /// Dimension-major lower bounds, `lo[dim * len + z]`.
    lo: Vec<f64>,
    /// Dimension-major upper bounds, `hi[dim * len + z]`.
    hi: Vec<f64>,
    /// Subpopulation weights `w_z`, in model order.
    weights: Vec<f64>,
    /// Precomputed `1 / |G_z|`, copied verbatim from the source model.
    inv_volumes: Vec<f64>,
}

impl FrozenModel {
    /// Freezes `model` into SoA form. `O(m · d)` — cheap relative to one
    /// batched estimate, and done once per published snapshot.
    ///
    /// # Panics
    /// Panics when the model's supports disagree on dimensionality.
    pub fn new(model: &UniformMixtureModel) -> Self {
        let len = model.len();
        let dim = model.rects().first().map_or(0, Rect::dim);
        let mut lo = vec![0.0; dim * len];
        let mut hi = vec![0.0; dim * len];
        for (z, r) in model.rects().iter().enumerate() {
            assert_eq!(r.dim(), dim, "mixed-dimension subpopulation supports");
            for (d, s) in r.sides().iter().enumerate() {
                lo[d * len + z] = s.lo;
                hi[d * len + z] = s.hi;
            }
        }
        Self {
            dim,
            len,
            lo,
            hi,
            weights: model.weights().to_vec(),
            inv_volumes: model.inv_volumes().to_vec(),
        }
    }

    /// Number of subpopulations `m`.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the model has no subpopulations.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Dimensionality of the supports (0 for an empty model).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Hard dimensionality guard at every kernel entry point. The
    /// explicit-SIMD path reads raw pointers from the column arrays, so
    /// a mismatched probe must fail loudly here — in release builds too
    /// — never reach the unsafe block. (An empty model has no supports
    /// to define a dimensionality; its kernel loops never run, so any
    /// probe is accepted and estimates 0.)
    #[inline]
    fn check_dim(&self, rect: &Rect) {
        assert!(
            self.len == 0 || rect.dim() == self.dim,
            "probe dimensionality {} does not match the model's {}",
            rect.dim(),
            self.dim
        );
    }

    /// Raw (unclamped) selectivity `Σ_z w_z |G_z ∩ B| / |G_z|` through
    /// the SoA kernel; compares equal (`==`) to the scalar
    /// [`UniformMixtureModel::estimate_raw`] — see the module docs'
    /// exactness contract.
    pub fn estimate_raw(&self, rect: &Rect) -> f64 {
        self.check_dim(rect);
        let mut ov = [0.0f64; SUBPOP_BLOCK];
        let mut acc = 0.0;
        let mut z0 = 0;
        while z0 < self.len {
            let c = SUBPOP_BLOCK.min(self.len - z0);
            self.overlap_block(rect, z0, &mut ov[..c]);
            self.accumulate_block(z0, &ov[..c], &mut acc);
            z0 += c;
        }
        acc
    }

    /// Selectivity estimate clamped into `[0, 1]`.
    pub fn estimate(&self, rect: &Rect) -> f64 {
        self.estimate_raw(rect).clamp(0.0, 1.0)
    }

    /// Batched estimation: clamped selectivities for every rectangle, in
    /// input order. Equivalent to mapping [`estimate`](Self::estimate)
    /// (and therefore to the scalar path), evaluated through the blocked
    /// kernel.
    pub fn estimate_many(&self, rects: &[Rect]) -> Vec<f64> {
        let mut out = Vec::with_capacity(rects.len());
        self.estimate_many_into(rects, &mut out);
        out
    }

    /// [`estimate_many`](Self::estimate_many) into a caller-provided
    /// buffer (cleared first), so steady-state serving reuses one
    /// allocation across calls.
    pub fn estimate_many_into(&self, rects: &[Rect], out: &mut Vec<f64>) {
        for rect in rects {
            self.check_dim(rect);
        }
        self.kernel_into(rects.len(), &|i| &rects[i], out);
    }

    /// Parallelism gate shared by the batched entry points: how many
    /// chunks (of whole [`RECT_TILE`] groups) the current pool splits a
    /// `count`-rect batch into. `<= 1` means the serial kernel runs.
    fn par_pieces(&self, count: usize) -> usize {
        if self.len == 0 {
            return 1;
        }
        quicksel_parallel::current().chunks_for(count.div_ceil(RECT_TILE), PAR_MIN_TILES)
    }

    /// Gather form of [`estimate_many`](Self::estimate_many): estimates
    /// `rects[indexes[k]]` for each `k`, in `indexes` order. This is
    /// what routed batch dispatch uses — regrouping a batch by shard
    /// becomes index shuffling instead of cloning rectangles.
    pub fn estimate_gather(&self, rects: &[Rect], indexes: &[usize]) -> Vec<f64> {
        let mut out = Vec::with_capacity(indexes.len());
        self.estimate_gather_into(rects, indexes, &mut out);
        out
    }

    /// [`estimate_gather`](Self::estimate_gather) into a caller-provided
    /// buffer (cleared first).
    ///
    /// # Panics
    /// Panics when an index is out of bounds or a gathered rect's
    /// dimensionality mismatches the model's.
    pub fn estimate_gather_into(&self, rects: &[Rect], indexes: &[usize], out: &mut Vec<f64>) {
        for &i in indexes {
            self.check_dim(&rects[i]);
        }
        self.kernel_into(indexes.len(), &|k| &rects[indexes[k]], out);
    }

    /// The blocked kernel over `count` rects resolved through `rect_at`
    /// (a direct slice index for `estimate_many_into`, an index-gather
    /// for `estimate_gather_into`). Callers have already dim-checked
    /// every rect `rect_at` can return.
    ///
    /// Batches above the parallel gate split into chunks of whole
    /// [`RECT_TILE`] groups across the workspace pool; each chunk runs
    /// the identical serial kernel over its own disjoint output slice,
    /// so batched results stay equal (`==`) to the scalar path at any
    /// thread count.
    fn kernel_into<'a, F>(&self, count: usize, rect_at: &F, out: &mut Vec<f64>)
    where
        F: Fn(usize) -> &'a Rect + Sync,
    {
        out.clear();
        let pieces = self.par_pieces(count);
        if pieces <= 1 {
            // Serial: extend straight into the (reserved) spare
            // capacity — the pre-parallelism path, no zero-fill pass.
            out.reserve(count);
            self.kernel_tiles(0, count, rect_at, |accs| {
                out.extend(accs.iter().map(|a| a.clamp(0.0, 1.0)));
            });
            return;
        }
        out.resize(count, 0.0);
        let tiles = count.div_ceil(RECT_TILE);
        quicksel_parallel::current().scope(|s| {
            let mut rest = out.as_mut_slice();
            let mut start = 0;
            for tile_range in quicksel_parallel::split_even(tiles, pieces) {
                let end = (tile_range.end * RECT_TILE).min(count);
                let (slab, tail) = rest.split_at_mut(end - start);
                rest = tail;
                let base = start;
                s.spawn(move || {
                    let mut off = 0;
                    self.kernel_tiles(base, slab.len(), rect_at, |accs| {
                        for (slot, acc) in slab[off..off + accs.len()].iter_mut().zip(accs) {
                            *slot = acc.clamp(0.0, 1.0);
                        }
                        off += accs.len();
                    });
                });
                start = end;
            }
        });
    }

    /// The serial blocked kernel over the rects `base..base + count`
    /// (as resolved through `rect_at`), handing each finished tile's
    /// raw accumulators to `sink` in order — the one tile loop behind
    /// both the serial extend path and the parallel slab path.
    fn kernel_tiles<'a, F>(
        &self,
        base: usize,
        count: usize,
        rect_at: &F,
        mut sink: impl FnMut(&[f64]),
    ) where
        F: Fn(usize) -> &'a Rect + Sync,
    {
        let mut ov = [0.0f64; SUBPOP_BLOCK];
        let mut t0 = 0;
        while t0 < count {
            let tile_len = RECT_TILE.min(count - t0);
            let mut accs = [0.0f64; RECT_TILE];
            let mut z0 = 0;
            while z0 < self.len {
                let c = SUBPOP_BLOCK.min(self.len - z0);
                for (j, acc) in accs[..tile_len].iter_mut().enumerate() {
                    self.overlap_block(rect_at(base + t0 + j), z0, &mut ov[..c]);
                    self.accumulate_block(z0, &ov[..c], acc);
                }
                z0 += c;
            }
            sink(&accs[..tile_len]);
            t0 += tile_len;
        }
    }

    /// Fills `ov[i]` with `|G_{z0+i} ∩ rect|` for one subpopulation
    /// block, as the left-to-right product of per-dimension overlap
    /// lengths.
    #[inline]
    fn overlap_block(&self, rect: &Rect, z0: usize, ov: &mut [f64]) {
        debug_assert_eq!(rect.dim(), self.dim);
        if self.dim == 0 {
            // Zero-dimensional supports: |G ∩ B| is the empty product,
            // 1 — matching the scalar `intersection_volume`. Without
            // this, the unwritten buffer would mask every term.
            ov.fill(1.0);
            return;
        }
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        if simd::avx2_enabled() {
            // SAFETY: gated on runtime AVX2 detection.
            unsafe { simd::overlap_block_avx2(self, rect, z0, ov) };
            return;
        }
        self.overlap_block_portable(rect, z0, ov);
    }

    /// Portable overlap block: branch-free min/max arithmetic over
    /// contiguous columns, written so LLVM auto-vectorizes it. Also the
    /// runtime fallback of the `simd` path on non-AVX2 hosts.
    ///
    /// The compare-select idiom (instead of `f64::min`/`max`) lowers
    /// directly to `minpd`/`maxpd`; for the finite bounds a model can
    /// hold the selected values are identical to the scalar path's
    /// `minNum`/`maxNum` semantics (they differ only on NaN inputs,
    /// which positive-volume supports cannot produce).
    fn overlap_block_portable(&self, rect: &Rect, z0: usize, ov: &mut [f64]) {
        #[inline(always)]
        fn overlap(lo: f64, hi: f64, q_lo: f64, q_hi: f64) -> f64 {
            let h = if hi < q_hi { hi } else { q_hi };
            let l = if lo > q_lo { lo } else { q_lo };
            let len = h - l;
            if len > 0.0 {
                len
            } else {
                0.0
            }
        }
        let m = self.len;
        for (d, side) in rect.sides().iter().enumerate() {
            let base = d * m + z0;
            let lows = &self.lo[base..base + ov.len()];
            let highs = &self.hi[base..base + ov.len()];
            if d == 0 {
                for ((o, &l), &h) in ov.iter_mut().zip(lows).zip(highs) {
                    *o = overlap(l, h, side.lo, side.hi);
                }
            } else {
                for ((o, &l), &h) in ov.iter_mut().zip(lows).zip(highs) {
                    *o *= overlap(l, h, side.lo, side.hi);
                }
            }
        }
    }

    /// Adds one block's terms into `acc` sequentially, with the scalar
    /// path's term association (`w * overlap * inv`) and its skip
    /// conditions expressed as a select (see the exactness contract).
    #[inline]
    fn accumulate_block(&self, z0: usize, ov: &[f64], acc: &mut f64) {
        let ws = &self.weights[z0..z0 + ov.len()];
        let invs = &self.inv_volumes[z0..z0 + ov.len()];
        for ((&w, &inv), &o) in ws.iter().zip(invs).zip(ov) {
            // Branch-free select instead of the scalar path's skips: a
            // masked-out term adds exactly 0.0, which leaves every
            // partial sum's *value* unchanged (only the sign of a zero
            // sum could differ, and 0.0 == -0.0), so results still
            // compare equal to the scalar path. The guard also keeps
            // speculative `w * o * inv` NaNs (zero × infinite reciprocal
            // volume) out of the accumulator, exactly like the skips do.
            let term = if w != 0.0 && o > 0.0 { w * o * inv } else { 0.0 };
            *acc += term;
        }
    }
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod simd {
    //! Explicit AVX2 lanes for the overlap block.
    //!
    //! Only the element-wise per-dimension products are vectorized; the
    //! reduction stays sequential in [`super::FrozenModel::accumulate_block`],
    //! so the `simd` feature keeps the module's exactness contract
    //! (`min`/`max`/`sub`/`mul` are IEEE-deterministic per element — the
    //! only freedom SIMD usually buys, reassociating a reduction, is
    //! never exercised).

    use super::FrozenModel;
    use quicksel_geometry::Rect;
    use std::arch::x86_64::{
        _mm256_loadu_pd, _mm256_max_pd, _mm256_min_pd, _mm256_mul_pd, _mm256_set1_pd,
        _mm256_setzero_pd, _mm256_storeu_pd, _mm256_sub_pd,
    };
    use std::sync::OnceLock;

    /// Runtime AVX2 detection, memoized.
    pub(super) fn avx2_enabled() -> bool {
        static AVX2: OnceLock<bool> = OnceLock::new();
        *AVX2.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
    }

    /// AVX2 overlap block; same operand order as the portable loop.
    ///
    /// # Safety
    /// The caller must have verified AVX2 support (see
    /// [`avx2_enabled`]).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn overlap_block_avx2(
        model: &FrozenModel,
        rect: &Rect,
        z0: usize,
        ov: &mut [f64],
    ) {
        const LANES: usize = 4;
        let m = model.len;
        let n = ov.len();
        let o = ov.as_mut_ptr();
        for (d, side) in rect.sides().iter().enumerate() {
            let base = d * m + z0;
            let lo = model.lo.as_ptr().add(base);
            let hi = model.hi.as_ptr().add(base);
            let q_lo = _mm256_set1_pd(side.lo);
            let q_hi = _mm256_set1_pd(side.hi);
            let zero = _mm256_setzero_pd();
            let mut i = 0usize;
            while i + LANES <= n {
                let l = _mm256_max_pd(_mm256_loadu_pd(lo.add(i)), q_lo);
                let h = _mm256_min_pd(_mm256_loadu_pd(hi.add(i)), q_hi);
                let len = _mm256_max_pd(_mm256_sub_pd(h, l), zero);
                let v = if d == 0 {
                    len
                } else {
                    _mm256_mul_pd(_mm256_loadu_pd(o.add(i) as *const f64), len)
                };
                _mm256_storeu_pd(o.add(i), v);
                i += LANES;
            }
            while i < n {
                let len = ((*hi.add(i)).min(side.hi) - (*lo.add(i)).max(side.lo)).max(0.0);
                if d == 0 {
                    *o.add(i) = len;
                } else {
                    *o.add(i) *= len;
                }
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_2d() -> UniformMixtureModel {
        let rects = vec![
            Rect::from_bounds(&[(0.0, 1.0), (0.0, 1.0)]),
            Rect::from_bounds(&[(2.0, 3.0), (2.0, 3.0)]),
            Rect::from_bounds(&[(0.5, 2.5), (0.5, 2.5)]),
        ];
        UniformMixtureModel::new(rects, vec![0.3, 0.5, 0.2])
    }

    #[test]
    fn frozen_layout_is_dimension_major() {
        let f = FrozenModel::new(&model_2d());
        assert_eq!((f.len(), f.dim()), (3, 2));
        assert!(!f.is_empty());
        // Dim 0 lows for z = 0, 1, 2, then dim 1 lows.
        assert_eq!(f.lo, vec![0.0, 2.0, 0.5, 0.0, 2.0, 0.5]);
        assert_eq!(f.hi, vec![1.0, 3.0, 2.5, 1.0, 3.0, 2.5]);
    }

    #[test]
    fn frozen_matches_scalar_bit_for_bit() {
        let m = model_2d();
        let f = FrozenModel::new(&m);
        let probes = [
            Rect::from_bounds(&[(0.0, 3.0), (0.0, 3.0)]),
            Rect::from_bounds(&[(0.25, 0.75), (0.25, 0.75)]),
            Rect::from_bounds(&[(5.0, 6.0), (5.0, 6.0)]),
            Rect::from_bounds(&[(1.0, 1.0), (0.0, 3.0)]), // zero volume
            Rect::from_bounds(&[(-100.0, 100.0), (-100.0, 100.0)]),
        ];
        for p in &probes {
            assert_eq!(f.estimate_raw(p), m.estimate_raw(p));
            assert_eq!(f.estimate(p), m.estimate(p));
        }
        let batched = f.estimate_many(&probes);
        for (p, b) in probes.iter().zip(&batched) {
            assert_eq!(m.estimate(p), *b);
        }
    }

    #[test]
    fn empty_model_and_empty_batch() {
        let m = UniformMixtureModel::new(Vec::new(), Vec::new());
        let f = FrozenModel::new(&m);
        assert!(f.is_empty());
        assert_eq!(f.estimate(&Rect::from_bounds(&[(0.0, 1.0)])), 0.0);
        let f = FrozenModel::new(&model_2d());
        assert!(f.estimate_many(&[]).is_empty());
    }

    #[test]
    fn blocked_paths_cross_block_boundaries() {
        // More subpops than one block, batch longer than one tile.
        let m_count = SUBPOP_BLOCK * 2 + 7;
        let rects: Vec<Rect> = (0..m_count)
            .map(|z| {
                let lo = (z % 13) as f64 * 0.7;
                Rect::from_bounds(&[(lo, lo + 1.5), (0.0, (z % 5 + 1) as f64)])
            })
            .collect();
        let weights: Vec<f64> = (0..m_count)
            .map(|z| if z % 7 == 0 { 0.0 } else { (z % 3) as f64 * 0.01 - 0.01 })
            .collect();
        let model = UniformMixtureModel::new(rects, weights);
        let f = FrozenModel::new(&model);
        let probes: Vec<Rect> = (0..RECT_TILE * 2 + 3)
            .map(|i| {
                let lo = (i % 9) as f64;
                Rect::from_bounds(&[(lo, lo + 2.0), (0.5, 4.5)])
            })
            .collect();
        let batched = f.estimate_many(&probes);
        assert_eq!(batched.len(), probes.len());
        for (p, b) in probes.iter().zip(&batched) {
            assert_eq!(model.estimate(p), *b);
        }
    }
}
