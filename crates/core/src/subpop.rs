//! Subpopulation generation from observed queries (§3.3).
//!
//! The paper's recipe:
//!
//! 1. generate 10 random points inside every observed predicate rectangle
//!    ("workload-aware points"),
//! 2. simple-random-sample the pool down to `m = min(4n, 4000)` centers,
//! 3. size each subpopulation from the average distance to its 10 nearest
//!    sibling centers so neighbours slightly overlap,
//!
//! clipping everything to the domain box `B0`. Distances are computed in
//! **domain-normalized** coordinates (each column rescaled to `[0,1]`) so
//! that wildly different column scales — e.g. DMV's `model_year` (spanning
//! 60) vs. `registration_date` (spanning 8000) — do not drown each other.

use quicksel_geometry::{Domain, Interval, Rect};
use rand::seq::SliceRandom;
use rand::Rng;

/// Generates `points_per_query` uniform points inside a predicate rect.
///
/// Degenerate (zero-volume) rectangles yield no points.
pub fn workload_points<R: Rng>(rect: &Rect, points_per_query: usize, rng: &mut R) -> Vec<Vec<f64>> {
    if rect.is_empty() {
        return Vec::new();
    }
    (0..points_per_query)
        .map(|_| rect.sides().iter().map(|s| rng.gen_range(s.lo..s.hi)).collect())
        .collect()
}

/// Simple random sampling without replacement down to `m` centers
/// (§3.3 step 2). Returns the pool itself when it is already small enough.
pub fn sample_centers<R: Rng>(pool: &[Vec<f64>], m: usize, rng: &mut R) -> Vec<Vec<f64>> {
    if pool.len() <= m {
        return pool.to_vec();
    }
    let mut idx: Vec<usize> = (0..pool.len()).collect();
    idx.shuffle(rng);
    idx.truncate(m);
    idx.into_iter().map(|i| pool[i].clone()).collect()
}

/// Sizes each center into a hyperrectangle `G_z` (§3.3 step 3).
///
/// For each center, the scalar size is the mean normalized Euclidean
/// distance to the `k` nearest sibling centers; the rectangle's normalized
/// half-width is `overlap_factor · size / 2` in every dimension, mapped
/// back to column units and clipped to `B0`.
///
/// The k-nearest-neighbour search bins the normalized centers into a
/// uniform grid and expands Chebyshev cell rings around each center
/// until the kth-smallest candidate distance is provably smaller than
/// anything an unvisited ring could hold; the k smallest are then taken
/// with `select_nth_unstable` partial selection instead of a full sort —
/// O(m·k)-ish against the reference's O(m² log m). Results are pinned
/// **identical** to [`size_subpopulations_reference`] by the proptest in
/// `tests/incremental_refine.rs`: the candidate superset always contains
/// the true k nearest, and the selected k values are re-sorted before
/// the mean so the summation order matches the reference exactly.
pub fn size_subpopulations(
    domain: &Domain,
    centers: &[Vec<f64>],
    k_neighbors: usize,
    overlap_factor: f64,
) -> Vec<Rect> {
    let m = centers.len();
    if m == 0 {
        return Vec::new();
    }
    let ctx = SizingContext::new(domain, centers);
    let mut rects = Vec::with_capacity(m);
    let mut search = NeighborSearch::new(&ctx);
    for zi in 0..m {
        let half_norm = if m == 1 {
            // Single subpopulation: cover a quarter of each dimension.
            0.25
        } else {
            let k = k_neighbors.min(m - 1);
            let mean = search.mean_knn_distance(&ctx, zi, k);
            (overlap_factor * mean * 0.5).max(1e-6)
        };
        rects.push(ctx.build_rect(domain, centers, zi, half_norm));
    }
    rects
}

/// The pre-optimization sizing path: exact k-NN by computing **all**
/// m−1 distances per center and fully sorting them. Kept as the
/// equivalence reference for [`size_subpopulations`] and the
/// `train_throughput` bench's naive baseline.
pub fn size_subpopulations_reference(
    domain: &Domain,
    centers: &[Vec<f64>],
    k_neighbors: usize,
    overlap_factor: f64,
) -> Vec<Rect> {
    let m = centers.len();
    if m == 0 {
        return Vec::new();
    }
    let ctx = SizingContext::new(domain, centers);
    let mut rects = Vec::with_capacity(m);
    let mut dists: Vec<f64> = Vec::with_capacity(m.saturating_sub(1));
    for zi in 0..m {
        let half_norm = if m == 1 {
            // Single subpopulation: cover a quarter of each dimension.
            0.25
        } else {
            dists.clear();
            for zj in 0..m {
                if zi == zj {
                    continue;
                }
                dists.push(ctx.dist(zi, zj));
            }
            let k = k_neighbors.min(dists.len());
            dists.sort_by(|a, b| a.partial_cmp(b).expect("finite distances"));
            let mean: f64 = dists[..k].iter().sum::<f64>() / k as f64;
            (overlap_factor * mean * 0.5).max(1e-6)
        };
        rects.push(ctx.build_rect(domain, centers, zi, half_norm));
    }
    rects
}

/// Shared sizing state: centers normalized into the unit cube plus the
/// rect-construction step both paths share verbatim.
struct SizingContext {
    dim: usize,
    lengths: Vec<f64>,
    /// Normalized coordinates, flattened point-major (`norm[z*d + i]`).
    norm: Vec<f64>,
}

impl SizingContext {
    fn new(domain: &Domain, centers: &[Vec<f64>]) -> Self {
        let d = domain.dim();
        let lengths: Vec<f64> = (0..d).map(|i| domain.bounds(i).length()).collect();
        let lows: Vec<f64> = (0..d).map(|i| domain.bounds(i).lo).collect();
        let mut norm = Vec::with_capacity(centers.len() * d);
        for c in centers {
            for ((&x, &l), &lo) in c.iter().zip(&lengths).zip(&lows) {
                norm.push((x - lo) / l);
            }
        }
        Self { dim: d, lengths, norm }
    }

    fn point(&self, z: usize) -> &[f64] {
        &self.norm[z * self.dim..(z + 1) * self.dim]
    }

    fn dist(&self, a: usize, b: usize) -> f64 {
        let d2: f64 = self.point(a).iter().zip(self.point(b)).map(|(x, y)| (x - y) * (x - y)).sum();
        d2.sqrt()
    }

    /// Maps a normalized half-width back to column units, clips to `B0`,
    /// and re-inflates collapsed sides — identical in both paths.
    fn build_rect(&self, domain: &Domain, centers: &[Vec<f64>], zi: usize, half_norm: f64) -> Rect {
        let sides: Vec<Interval> = (0..self.dim)
            .map(|dim| {
                let half = half_norm * self.lengths[dim];
                Interval::new(centers[zi][dim] - half, centers[zi][dim] + half)
                    .clamp_to(&domain.bounds(dim))
            })
            .collect();
        let mut rect = Rect::new(sides);
        // Clamping at the domain edge can collapse a side; re-inflate
        // minimally so every support has positive volume.
        for (dim, &len) in self.lengths.iter().enumerate() {
            if rect.side(dim).is_empty() {
                let b = domain.bounds(dim);
                let eps = 1e-6 * len;
                let c = centers[zi][dim].clamp(b.lo + eps, b.hi - eps);
                *rect.side_mut(dim) = Interval::new(c - eps, c + eps);
            }
        }
        rect
    }
}

/// Grid-accelerated exact k-NN over normalized centers.
struct NeighborSearch {
    /// Cells per dimension (uniform).
    res: usize,
    /// CSR cell lists over flattened indexes.
    start: Vec<usize>,
    items: Vec<u32>,
    /// Per-center cell coordinates, point-major.
    cell: Vec<usize>,
    cand: Vec<f64>,
    /// Ring-sweep scratch (in-bounds box bounds + odometer state), so
    /// the hot sizing loop allocates nothing per ring.
    lo: Vec<usize>,
    hi: Vec<usize>,
    cur: Vec<usize>,
}

impl NeighborSearch {
    fn new(ctx: &SizingContext) -> Self {
        let m = ctx.norm.len() / ctx.dim.max(1);
        let d = ctx.dim.max(1);
        // ~one center per cell, bounded per dimension AND in total: the
        // ring sweep iterates cell boxes, so `res^d` must stay O(m) or
        // high-dimensional domains would explode the per-ring odometer
        // (res collapses to 1 there and the search gracefully degrades
        // to the all-pairs scan over one cell).
        let mut res = if ctx.dim == 0 {
            1
        } else {
            ((m as f64).powf(1.0 / d as f64).round() as usize).clamp(1, 64)
        };
        let cell_budget = (4 * m.max(16)) as f64;
        while res > 1 && (res as f64).powi(ctx.dim as i32) > cell_budget {
            res -= 1;
        }
        let cells = res.pow(ctx.dim as u32).max(1);
        let mut cell = vec![0usize; m * ctx.dim];
        let mut counts = vec![0usize; cells + 1];
        for z in 0..m {
            let mut flat = 0usize;
            for (i, &x) in ctx.point(z).iter().enumerate() {
                let c = ((x * res as f64) as usize).min(res - 1);
                cell[z * ctx.dim + i] = c;
                flat = flat * res + c;
            }
            counts[flat + 1] += 1;
        }
        for c in 0..cells {
            counts[c + 1] += counts[c];
        }
        let mut items = vec![0u32; m];
        let mut cursor = counts.clone();
        for z in 0..m {
            let flat = ctx
                .point(z)
                .iter()
                .enumerate()
                .fold(0usize, |acc, (i, _)| acc * res + cell[z * ctx.dim + i]);
            items[cursor[flat]] = z as u32;
            cursor[flat] += 1;
        }
        Self {
            res,
            start: counts,
            items,
            cell,
            cand: Vec::new(),
            lo: vec![0; ctx.dim],
            hi: vec![0; ctx.dim],
            cur: vec![0; ctx.dim],
        }
    }

    /// Mean distance to the exact `k` nearest siblings of center `zi`
    /// (`k ≤ m − 1`), summed in ascending order like the reference.
    fn mean_knn_distance(&mut self, ctx: &SizingContext, zi: usize, k: usize) -> f64 {
        if k == 0 {
            // `k_neighbors = 0`: the reference's empty-sum/0 mean is
            // NaN, which the caller's `.max(1e-6)` resolves to the
            // floor half-width — reproduce that instead of underflowing
            // the selection index.
            return f64::NAN;
        }
        let d = ctx.dim;
        self.cand.clear();
        if d == 0 {
            // All centers coincide in a 0-dimensional space.
            return 0.0;
        }
        // Minimum separation a center in an unvisited ring can have:
        // ring ρ is at least (ρ−1) cells away in some dimension.
        let cell_w = 1.0 / self.res as f64;
        let max_ring = self.res; // ring res covers every cell from any home
        let mut ring = 0usize;
        loop {
            self.gather_ring(ctx, zi, ring);
            if self.cand.len() >= k {
                let kth = {
                    let (_, kth, _) = self.cand.select_nth_unstable_by(k - 1, |a, b| {
                        a.partial_cmp(b).expect("finite distances")
                    });
                    *kth
                };
                if ring >= max_ring || kth <= ring as f64 * cell_w {
                    break;
                }
            } else if ring >= max_ring {
                break;
            }
            ring += 1;
        }
        let k = k.min(self.cand.len());
        let (head, _, _) = self
            .cand
            .select_nth_unstable_by(k - 1, |a, b| a.partial_cmp(b).expect("finite distances"));
        // Re-sort the selected k ascending so the sum's term order (and
        // therefore its rounding) matches the fully-sorted reference.
        head.sort_by(|a, b| a.partial_cmp(b).expect("finite distances"));
        let mut sum = 0.0;
        for &v in head.iter() {
            sum += v;
        }
        sum += self.cand[k - 1];
        sum / k as f64
    }

    /// Pushes the distances from `zi` to every center in cells at
    /// Chebyshev ring distance exactly `ring` from `zi`'s home cell.
    fn gather_ring(&mut self, ctx: &SizingContext, zi: usize, ring: usize) {
        let d = ctx.dim;
        let res = self.res;
        let r = ring as isize;
        // Destructure for disjoint field borrows: `home` reads `cell`
        // while the scratch buffers and `cand` mutate.
        let Self { start, items, cell, cand, lo, hi, cur, .. } = self;
        let home = &cell[zi * d..(zi + 1) * d];
        // Iterate only the in-bounds part of the cell box
        // [home − r, home + r]^d (never the out-of-grid coordinates —
        // clamping keeps each ring's iteration within the O(m) cell
        // budget), keeping the cells on the shell (Chebyshev distance
        // exactly `ring`).
        for (i, &h) in home.iter().enumerate() {
            lo[i] = (h as isize - r).max(0) as usize;
            hi[i] = ((h as isize + r) as usize).min(res - 1);
            cur[i] = lo[i];
        }
        'outer: loop {
            let on_shell = cur.iter().zip(home).any(|(&c, &h)| c.abs_diff(h) == ring);
            if on_shell {
                let flat = cur.iter().fold(0usize, |acc, &c| acc * res + c);
                for &z in &items[start[flat]..start[flat + 1]] {
                    if z as usize != zi {
                        cand.push(ctx.dist(zi, z as usize));
                    }
                }
            }
            // Odometer.
            let mut i = d;
            loop {
                if i == 0 {
                    break 'outer;
                }
                i -= 1;
                cur[i] += 1;
                if cur[i] <= hi[i] {
                    break;
                }
                cur[i] = lo[i];
                if i == 0 {
                    break 'outer;
                }
            }
        }
    }
}

/// Full §3.3 pipeline: per-query point clouds → sampled centers → sized
/// supports.
pub fn build_subpopulations<R: Rng>(
    domain: &Domain,
    point_pool: &[Vec<f64>],
    m: usize,
    k_neighbors: usize,
    overlap_factor: f64,
    rng: &mut R,
) -> Vec<Rect> {
    let centers = sample_centers(point_pool, m, rng);
    size_subpopulations(domain, &centers, k_neighbors, overlap_factor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(17)
    }

    fn domain() -> Domain {
        Domain::of_reals(&[("x", 0.0, 10.0), ("y", 0.0, 10.0)])
    }

    #[test]
    fn points_fall_inside_their_predicate() {
        let r = Rect::from_bounds(&[(2.0, 4.0), (6.0, 9.0)]);
        let pts = workload_points(&r, 10, &mut rng());
        assert_eq!(pts.len(), 10);
        for p in &pts {
            assert!(r.contains_point(p), "{p:?} outside {r}");
        }
    }

    #[test]
    fn empty_rect_yields_no_points() {
        let r = Rect::from_bounds(&[(2.0, 2.0), (6.0, 9.0)]);
        assert!(workload_points(&r, 10, &mut rng()).is_empty());
    }

    #[test]
    fn sampling_caps_pool_size() {
        let pool: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64, 0.0]).collect();
        let s = sample_centers(&pool, 30, &mut rng());
        assert_eq!(s.len(), 30);
        // All sampled points come from the pool (no duplicates fabricated).
        for p in &s {
            assert!(pool.contains(p));
        }
        // Small pools are passed through.
        let s2 = sample_centers(&pool[..5], 30, &mut rng());
        assert_eq!(s2.len(), 5);
    }

    #[test]
    fn sized_supports_have_positive_volume_inside_domain() {
        let d = domain();
        let pool: Vec<Vec<f64>> =
            (0..50).map(|i| vec![(i % 10) as f64 + 0.5, (i / 10) as f64 + 0.5]).collect();
        let rects = build_subpopulations(&d, &pool, 20, 10, 1.2, &mut rng());
        assert_eq!(rects.len(), 20);
        let b0 = d.full_rect();
        for r in &rects {
            assert!(r.volume() > 0.0);
            assert!(b0.contains_rect(r), "{r} escapes domain");
        }
    }

    #[test]
    fn single_center_covers_a_chunk_of_domain() {
        let d = domain();
        let rects = size_subpopulations(&d, &[vec![5.0, 5.0]], 10, 1.2);
        assert_eq!(rects.len(), 1);
        // Quarter-width per dimension → half the length per side.
        assert!((rects[0].volume() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn denser_clusters_get_smaller_supports() {
        let d = domain();
        // Tight cluster near the origin + one far outlier.
        let mut centers: Vec<Vec<f64>> =
            (0..10).map(|i| vec![0.5 + 0.01 * i as f64, 0.5 + 0.01 * i as f64]).collect();
        centers.push(vec![9.0, 9.0]);
        let rects = size_subpopulations(&d, &centers, 5, 1.2);
        let cluster_vol = rects[0].volume();
        let outlier_vol = rects[10].volume();
        assert!(outlier_vol > 10.0 * cluster_vol, "outlier {outlier_vol} vs cluster {cluster_vol}");
    }

    #[test]
    fn zero_k_neighbors_falls_back_to_floor_like_reference() {
        // `size_neighbors(0)` is a public knob: the reference path's 0/0
        // mean is NaN, resolved to the 1e-6 floor; the grid path must
        // not panic and must produce identical rects.
        let d = domain();
        let centers = vec![vec![2.0, 2.0], vec![7.0, 7.0], vec![4.0, 6.0]];
        let fast = size_subpopulations(&d, &centers, 0, 1.2);
        let reference = size_subpopulations_reference(&d, &centers, 0, 1.2);
        assert_eq!(fast.len(), reference.len());
        for (f, r) in fast.iter().zip(&reference) {
            for dim in 0..2 {
                assert_eq!(f.side(dim).lo, r.side(dim).lo);
                assert_eq!(f.side(dim).hi, r.side(dim).hi);
            }
            assert!(f.volume() > 0.0);
        }
    }

    #[test]
    fn edge_centers_are_clamped_not_dropped() {
        let d = domain();
        let centers = vec![vec![0.0, 0.0], vec![10.0, 10.0], vec![5.0, 5.0]];
        let rects = size_subpopulations(&d, &centers, 2, 1.2);
        for r in &rects {
            assert!(r.volume() > 0.0);
            assert!(d.full_rect().contains_rect(r));
        }
    }

    #[test]
    fn high_dimensional_domains_stay_fast_and_exact() {
        // At d=16 the cell budget collapses the grid toward res=1, so
        // the ring sweep degrades to the all-pairs cell instead of
        // iterating a (2r+1)^16 odometer box; results must still match
        // the reference exactly (and finish instantly).
        let d = 16usize;
        let names: Vec<String> = (0..d).map(|i| format!("c{i}")).collect();
        let cols: Vec<(&str, f64, f64)> = names.iter().map(|n| (n.as_str(), 0.0, 10.0)).collect();
        let domain = Domain::of_reals(&cols);
        let centers: Vec<Vec<f64>> = (0..150)
            .map(|z| (0..d).map(|i| ((z * 31 + i * 17) % 100) as f64 * 0.1).collect())
            .collect();
        let fast = size_subpopulations(&domain, &centers, 10, 1.2);
        let reference = size_subpopulations_reference(&domain, &centers, 10, 1.2);
        assert_eq!(fast.len(), reference.len());
        for (f, r) in fast.iter().zip(&reference) {
            for dim in 0..d {
                assert_eq!(f.side(dim).lo, r.side(dim).lo);
                assert_eq!(f.side(dim).hi, r.side(dim).hi);
            }
        }
    }

    #[test]
    fn anisotropic_domains_scale_per_dimension() {
        // One dimension is 1000× wider; supports should follow suit.
        let d = Domain::of_reals(&[("narrow", 0.0, 1.0), ("wide", 0.0, 1000.0)]);
        let centers: Vec<Vec<f64>> =
            (0..20).map(|i| vec![0.05 * i as f64, 50.0 * i as f64]).collect();
        let rects = size_subpopulations(&d, &centers, 5, 1.2);
        for r in &rects {
            let ratio = r.side(1).length() / r.side(0).length();
            assert!(ratio > 100.0, "aspect ratio {ratio} too small");
        }
    }
}
