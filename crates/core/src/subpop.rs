//! Subpopulation generation from observed queries (§3.3).
//!
//! The paper's recipe:
//!
//! 1. generate 10 random points inside every observed predicate rectangle
//!    ("workload-aware points"),
//! 2. simple-random-sample the pool down to `m = min(4n, 4000)` centers,
//! 3. size each subpopulation from the average distance to its 10 nearest
//!    sibling centers so neighbours slightly overlap,
//!
//! clipping everything to the domain box `B0`. Distances are computed in
//! **domain-normalized** coordinates (each column rescaled to `[0,1]`) so
//! that wildly different column scales — e.g. DMV's `model_year` (spanning
//! 60) vs. `registration_date` (spanning 8000) — do not drown each other.

use quicksel_geometry::{Domain, Interval, Rect};
use rand::seq::SliceRandom;
use rand::Rng;

/// Generates `points_per_query` uniform points inside a predicate rect.
///
/// Degenerate (zero-volume) rectangles yield no points.
pub fn workload_points<R: Rng>(rect: &Rect, points_per_query: usize, rng: &mut R) -> Vec<Vec<f64>> {
    if rect.is_empty() {
        return Vec::new();
    }
    (0..points_per_query)
        .map(|_| rect.sides().iter().map(|s| rng.gen_range(s.lo..s.hi)).collect())
        .collect()
}

/// Simple random sampling without replacement down to `m` centers
/// (§3.3 step 2). Returns the pool itself when it is already small enough.
pub fn sample_centers<R: Rng>(pool: &[Vec<f64>], m: usize, rng: &mut R) -> Vec<Vec<f64>> {
    if pool.len() <= m {
        return pool.to_vec();
    }
    let mut idx: Vec<usize> = (0..pool.len()).collect();
    idx.shuffle(rng);
    idx.truncate(m);
    idx.into_iter().map(|i| pool[i].clone()).collect()
}

/// Sizes each center into a hyperrectangle `G_z` (§3.3 step 3).
///
/// For each center, the scalar size is the mean normalized Euclidean
/// distance to the `k` nearest sibling centers; the rectangle's normalized
/// half-width is `overlap_factor · size / 2` in every dimension, mapped
/// back to column units and clipped to `B0`.
pub fn size_subpopulations(
    domain: &Domain,
    centers: &[Vec<f64>],
    k_neighbors: usize,
    overlap_factor: f64,
) -> Vec<Rect> {
    let d = domain.dim();
    let m = centers.len();
    if m == 0 {
        return Vec::new();
    }
    let lengths: Vec<f64> = (0..d).map(|i| domain.bounds(i).length()).collect();
    let lows: Vec<f64> = (0..d).map(|i| domain.bounds(i).lo).collect();
    // Normalize centers into the unit cube.
    let norm: Vec<Vec<f64>> = centers
        .iter()
        .map(|c| c.iter().zip(&lengths).zip(&lows).map(|((&x, &l), &lo)| (x - lo) / l).collect())
        .collect();

    let mut rects = Vec::with_capacity(m);
    let mut dists: Vec<f64> = Vec::with_capacity(m.saturating_sub(1));
    for (zi, cz) in norm.iter().enumerate() {
        let half_norm = if m == 1 {
            // Single subpopulation: cover a quarter of each dimension.
            0.25
        } else {
            dists.clear();
            for (zj, cj) in norm.iter().enumerate() {
                if zi == zj {
                    continue;
                }
                let d2: f64 = cz.iter().zip(cj).map(|(a, b)| (a - b) * (a - b)).sum();
                dists.push(d2.sqrt());
            }
            let k = k_neighbors.min(dists.len());
            // Partial selection of the k smallest distances.
            dists.sort_by(|a, b| a.partial_cmp(b).expect("finite distances"));
            let mean: f64 = dists[..k].iter().sum::<f64>() / k as f64;
            (overlap_factor * mean * 0.5).max(1e-6)
        };
        let sides: Vec<Interval> = (0..d)
            .map(|dim| {
                let half = half_norm * lengths[dim];
                Interval::new(centers[zi][dim] - half, centers[zi][dim] + half)
                    .clamp_to(&domain.bounds(dim))
            })
            .collect();
        let mut rect = Rect::new(sides);
        // Clamping at the domain edge can collapse a side; re-inflate
        // minimally so every support has positive volume.
        for dim in 0..d {
            if rect.side(dim).is_empty() {
                let b = domain.bounds(dim);
                let eps = 1e-6 * lengths[dim];
                let c = centers[zi][dim].clamp(b.lo + eps, b.hi - eps);
                *rect.side_mut(dim) = Interval::new(c - eps, c + eps);
            }
        }
        rects.push(rect);
    }
    rects
}

/// Full §3.3 pipeline: per-query point clouds → sampled centers → sized
/// supports.
pub fn build_subpopulations<R: Rng>(
    domain: &Domain,
    point_pool: &[Vec<f64>],
    m: usize,
    k_neighbors: usize,
    overlap_factor: f64,
    rng: &mut R,
) -> Vec<Rect> {
    let centers = sample_centers(point_pool, m, rng);
    size_subpopulations(domain, &centers, k_neighbors, overlap_factor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(17)
    }

    fn domain() -> Domain {
        Domain::of_reals(&[("x", 0.0, 10.0), ("y", 0.0, 10.0)])
    }

    #[test]
    fn points_fall_inside_their_predicate() {
        let r = Rect::from_bounds(&[(2.0, 4.0), (6.0, 9.0)]);
        let pts = workload_points(&r, 10, &mut rng());
        assert_eq!(pts.len(), 10);
        for p in &pts {
            assert!(r.contains_point(p), "{p:?} outside {r}");
        }
    }

    #[test]
    fn empty_rect_yields_no_points() {
        let r = Rect::from_bounds(&[(2.0, 2.0), (6.0, 9.0)]);
        assert!(workload_points(&r, 10, &mut rng()).is_empty());
    }

    #[test]
    fn sampling_caps_pool_size() {
        let pool: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64, 0.0]).collect();
        let s = sample_centers(&pool, 30, &mut rng());
        assert_eq!(s.len(), 30);
        // All sampled points come from the pool (no duplicates fabricated).
        for p in &s {
            assert!(pool.contains(p));
        }
        // Small pools are passed through.
        let s2 = sample_centers(&pool[..5], 30, &mut rng());
        assert_eq!(s2.len(), 5);
    }

    #[test]
    fn sized_supports_have_positive_volume_inside_domain() {
        let d = domain();
        let pool: Vec<Vec<f64>> =
            (0..50).map(|i| vec![(i % 10) as f64 + 0.5, (i / 10) as f64 + 0.5]).collect();
        let rects = build_subpopulations(&d, &pool, 20, 10, 1.2, &mut rng());
        assert_eq!(rects.len(), 20);
        let b0 = d.full_rect();
        for r in &rects {
            assert!(r.volume() > 0.0);
            assert!(b0.contains_rect(r), "{r} escapes domain");
        }
    }

    #[test]
    fn single_center_covers_a_chunk_of_domain() {
        let d = domain();
        let rects = size_subpopulations(&d, &[vec![5.0, 5.0]], 10, 1.2);
        assert_eq!(rects.len(), 1);
        // Quarter-width per dimension → half the length per side.
        assert!((rects[0].volume() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn denser_clusters_get_smaller_supports() {
        let d = domain();
        // Tight cluster near the origin + one far outlier.
        let mut centers: Vec<Vec<f64>> =
            (0..10).map(|i| vec![0.5 + 0.01 * i as f64, 0.5 + 0.01 * i as f64]).collect();
        centers.push(vec![9.0, 9.0]);
        let rects = size_subpopulations(&d, &centers, 5, 1.2);
        let cluster_vol = rects[0].volume();
        let outlier_vol = rects[10].volume();
        assert!(outlier_vol > 10.0 * cluster_vol, "outlier {outlier_vol} vs cluster {cluster_vol}");
    }

    #[test]
    fn edge_centers_are_clamped_not_dropped() {
        let d = domain();
        let centers = vec![vec![0.0, 0.0], vec![10.0, 10.0], vec![5.0, 5.0]];
        let rects = size_subpopulations(&d, &centers, 2, 1.2);
        for r in &rects {
            assert!(r.volume() > 0.0);
            assert!(d.full_rect().contains_rect(r));
        }
    }

    #[test]
    fn anisotropic_domains_scale_per_dimension() {
        // One dimension is 1000× wider; supports should follow suit.
        let d = Domain::of_reals(&[("narrow", 0.0, 1.0), ("wide", 0.0, 1000.0)]);
        let centers: Vec<Vec<f64>> =
            (0..20).map(|i| vec![0.05 * i as f64, 50.0 * i as f64]).collect();
        let rects = size_subpopulations(&d, &centers, 5, 1.2);
        for r in &rects {
            let ratio = r.side(1).length() / r.side(0).length();
            assert!(ratio > 100.0, "aspect ratio {ratio} too small");
        }
    }
}
