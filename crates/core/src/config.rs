//! Tuning knobs for QuickSel, defaulting to the paper's settings.

/// When the mixture model is re-trained relative to incoming observations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefinePolicy {
    /// Retrain after every observed query (the §5.2 protocol).
    EveryQuery,
    /// Retrain after every `k` observed queries (the §5.3 drift protocol
    /// uses `k = 100`).
    EveryK(usize),
    /// Only retrain when [`QuickSel::refine`](crate::QuickSel::refine) is
    /// called explicitly.
    Manual,
}

/// Which optimizer computes the subpopulation weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainingMethod {
    /// The paper's analytic solution to the penalized QP (Problem 3):
    /// `w* = (Q + λAᵀA)⁻¹ λAᵀs`. One factorization, no iterations.
    AnalyticPenalty,
    /// The standard constrained QP of Theorem 1 solved iteratively (ADMM).
    /// Kept for the §5.4 comparison; strictly slower.
    StandardQp,
}

/// Configuration for a [`QuickSel`](crate::QuickSel) instance.
#[derive(Debug, Clone)]
pub struct QuickSelConfig {
    /// Penalty weight λ of Problem 3. Paper: `10⁶`.
    pub lambda: f64,
    /// Relative Tikhonov ridge on the analytic solve (see
    /// [`quicksel_linalg::qp::DEFAULT_RIDGE_REL`] for the rationale); set
    /// to 0 for the paper's unregularized closed form.
    pub ridge_rel: f64,
    /// Random points generated inside each observed predicate (§3.3 step 1).
    /// Paper: 10 ("generating more than 10 points did not improve
    /// accuracy").
    pub points_per_query: usize,
    /// Subpopulations per observed query before the cap (§3.3 footnote:
    /// `m = min(4·n, 4000)`).
    pub subpops_per_query: usize,
    /// Hard cap on the number of subpopulations. Paper: 4000.
    pub max_subpops: usize,
    /// Neighbours averaged when sizing a subpopulation (§3.3 step 3).
    /// Paper: 10.
    pub size_neighbors: usize,
    /// Multiplier on the neighbour distance when sizing `G_z` so that
    /// neighbouring subpopulations "slightly overlap" (§3.3 step 3).
    pub overlap_factor: f64,
    /// Retraining cadence.
    pub refine_policy: RefinePolicy,
    /// Weight optimizer.
    pub training: TrainingMethod,
    /// RNG seed for point generation and sampling (deterministic runs).
    pub seed: u64,
    /// Optional hard ceiling on consecutive *warm* (incremental) refines
    /// before the next refine falls back to a full rebuild that
    /// resamples subpopulations. Warm refines fire only while the
    /// subpopulation budget `m` is unchanged (i.e. once the
    /// `min(4n, 4000)` cap is reached, or under a fixed budget) and
    /// reuse the cached assembly. Since drift detection (below) now
    /// decides when a resample is actually needed, the default is
    /// `usize::MAX` (no blind ceiling); a finite value restores the old
    /// counter behaviour and 0 disables the incremental path entirely.
    pub warm_refine_limit: usize,
    /// Budget on retained feedback history (observed queries, their
    /// workload points, and the trainer's cached constraint rows). When
    /// the history exceeds this, the oldest entries are compacted by
    /// merge (bounding-box rect, count-weighted selectivity) rather than
    /// dropped, so coverage of old regions survives eviction; the
    /// trainer folds evicted rows *out* of its cached system as a
    /// signed rank-k downdate. `usize::MAX` (the default) retains
    /// everything and is bit-identical to the historic unbounded path.
    pub max_history: usize,
    /// Drift trigger: a warm refine whose constraint violation exceeds
    /// `drift_ratio ×` the tracked violation baseline (EWMA over recent
    /// warm refines) counts as a drift strike. Must be > 1 to be
    /// meaningful; larger is less sensitive.
    pub drift_ratio: f64,
    /// Consecutive drift strikes required before the next refine is
    /// forced cold (resampling subpopulations against the current
    /// workload). `usize::MAX` disables drift detection.
    pub drift_patience: usize,
}

impl Default for QuickSelConfig {
    fn default() -> Self {
        Self {
            lambda: 1e6,
            ridge_rel: quicksel_linalg::qp::DEFAULT_RIDGE_REL,
            points_per_query: 10,
            subpops_per_query: 4,
            max_subpops: 4000,
            size_neighbors: 10,
            overlap_factor: 1.2,
            refine_policy: RefinePolicy::EveryQuery,
            training: TrainingMethod::AnalyticPenalty,
            seed: 0x5EED,
            warm_refine_limit: usize::MAX,
            max_history: usize::MAX,
            drift_ratio: 3.0,
            drift_patience: 3,
        }
    }
}

impl QuickSelConfig {
    /// The paper's `m = min(4·n, 4000)` given `n` observed queries.
    pub fn target_subpops(&self, observed: usize) -> usize {
        self.subpops_per_query.saturating_mul(observed).min(self.max_subpops).max(1)
    }

    /// Overrides the subpopulation budget to a fixed `m` (the §5.6 "model
    /// parameter count" study disables the 4·n default).
    pub fn with_fixed_subpops(mut self, m: usize) -> Self {
        assert!(m >= 1, "need at least one subpopulation");
        self.subpops_per_query = usize::MAX / 2; // always hit the cap
        self.max_subpops = m;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = QuickSelConfig::default();
        assert_eq!(c.lambda, 1e6);
        assert_eq!(c.points_per_query, 10);
        assert_eq!(c.max_subpops, 4000);
        assert_eq!(c.target_subpops(10), 40);
        assert_eq!(c.target_subpops(2000), 4000);
    }

    #[test]
    fn target_subpops_is_at_least_one() {
        let c = QuickSelConfig::default();
        assert_eq!(c.target_subpops(0), 1);
    }

    #[test]
    fn fixed_subpops_pins_budget() {
        let c = QuickSelConfig::default().with_fixed_subpops(123);
        assert_eq!(c.target_subpops(1), 123);
        assert_eq!(c.target_subpops(100_000), 123);
    }

    #[test]
    fn warm_refines_enabled_by_default() {
        assert!(QuickSelConfig::default().warm_refine_limit > 0);
    }

    #[test]
    fn history_unbounded_by_default() {
        let c = QuickSelConfig::default();
        assert_eq!(c.max_history, usize::MAX);
        assert!(c.drift_ratio > 1.0);
        assert!(c.drift_patience >= 1);
    }
}
