//! Cost-based access-path selection driven by selectivity estimates.

use crate::catalog::Catalog;
use crate::cost::CostModel;
use quicksel_geometry::Predicate;

/// The physical plan chosen for a predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessPath {
    /// Scan every row, applying the full predicate.
    SeqScan,
    /// Probe the index on `column` with the predicate's range on that
    /// column, then apply the residual predicate to the fetched rows.
    IndexProbe {
        /// Which indexed column drives the probe.
        column: usize,
        /// Estimated selectivity of the index-driving range alone.
        driving_selectivity: f64,
    },
}

/// Chooses the cheapest access path for `pred`.
///
/// For each available index whose column the predicate constrains, the
/// planner asks the estimator for the selectivity of the *driving range*
/// (that column's constraint alone — the index can only use one column)
/// and compares probe cost against the scan.
pub fn plan(catalog: &Catalog, pred: &Predicate, cost: &CostModel) -> AccessPath {
    let rows = catalog.table.row_count();
    let domain = catalog.table.domain();
    let mut best = (cost.seq_scan(rows), AccessPath::SeqScan);
    for index in &catalog.indexes {
        // The driving range: the predicate restricted to the indexed column.
        let Some(constraint) = pred.constraints().iter().find(|c| c.column == index.column) else {
            continue; // predicate doesn't touch this index
        };
        let driving = Predicate::new().with_interval(index.column, constraint.range);
        let sel = catalog.estimator.estimate(&driving.to_rect(domain));
        let c = cost.index_probe(rows, sel);
        if c < best.0 {
            best = (c, AccessPath::IndexProbe { column: index.column, driving_selectivity: sel });
        }
    }
    best.1
}

#[cfg(test)]
mod tests {
    use super::*;
    use quicksel_core::QuickSel;
    use quicksel_data::{ObservedQuery, Table};
    use quicksel_geometry::Domain;

    fn catalog() -> Catalog {
        let d = Domain::of_reals(&[("x", 0.0, 100.0), ("y", 0.0, 100.0)]);
        let mut t = Table::new(d.clone());
        // Dense cluster in x ∈ [0, 10): 90% of rows.
        for i in 0..9000 {
            t.push_row(&[(i % 100) as f64 / 10.0, (i % 97) as f64]);
        }
        for i in 0..1000 {
            t.push_row(&[10.0 + (i % 900) as f64 / 10.0, (i % 89) as f64]);
        }
        let est = QuickSel::new(d);
        Catalog::new(t, Box::new(est)).with_index(0)
    }

    #[test]
    fn unconstrained_predicate_scans() {
        let cat = catalog();
        let p = Predicate::new();
        assert_eq!(plan(&cat, &p, &CostModel::default()), AccessPath::SeqScan);
    }

    #[test]
    fn predicate_on_unindexed_column_scans() {
        let cat = catalog();
        let p = Predicate::new().range(1, 0.0, 1.0);
        assert_eq!(plan(&cat, &p, &CostModel::default()), AccessPath::SeqScan);
    }

    #[test]
    fn uninformed_planner_uses_uniformity() {
        let cat = catalog();
        // Under uniformity x ∈ [0, 5) looks like 5% — index looks good,
        // even though the data is clustered there (truth 45%).
        let p = Predicate::new().range(0, 0.0, 5.0);
        match plan(&cat, &p, &CostModel::default()) {
            AccessPath::IndexProbe { driving_selectivity, .. } => {
                assert!((driving_selectivity - 0.05).abs() < 1e-9);
            }
            other => panic!("expected index probe, got {other:?}"),
        }
    }

    #[test]
    fn learning_flips_a_wrong_plan() {
        let mut cat = catalog();
        let p = Predicate::new().range(0, 0.0, 5.0);
        let rect = p.to_rect(cat.table.domain());
        // Initially mis-planned as an index probe (see above). Feed the
        // true selectivity once; the planner flips to the scan.
        let truth = cat.table.selectivity(&rect);
        assert!(truth > 0.4);
        cat.estimator.observe(&ObservedQuery::new(rect, truth));
        assert_eq!(plan(&cat, &p, &CostModel::default()), AccessPath::SeqScan);
    }

    #[test]
    fn truly_selective_predicate_keeps_the_index() {
        let mut cat = catalog();
        let p = Predicate::new().range(0, 98.0, 99.0);
        let rect = p.to_rect(cat.table.domain());
        let truth = cat.table.selectivity(&rect);
        cat.estimator.observe(&ObservedQuery::new(rect, truth));
        assert!(matches!(plan(&cat, &p, &CostModel::default()), AccessPath::IndexProbe { .. }));
    }
}
