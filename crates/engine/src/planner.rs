//! Cost-based access-path selection driven by selectivity estimates.

use crate::catalog::Catalog;
use crate::cost::CostModel;
use quicksel_geometry::Predicate;
use quicksel_service::{CardinalityProvider, TableId};

/// The physical plan chosen for a predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessPath {
    /// Scan every row, applying the full predicate.
    SeqScan,
    /// Probe the index on `column` with the predicate's range on that
    /// column, then apply the residual predicate to the fetched rows.
    IndexProbe {
        /// Which indexed column drives the probe.
        column: usize,
        /// Estimated selectivity of the index-driving range alone.
        driving_selectivity: f64,
    },
}

/// Chooses the cheapest access path for `pred` on `table`.
///
/// For each available index whose column the predicate constrains, the
/// planner asks the provider for the selectivity of the *driving range*
/// (that column's constraint alone — the index can only use one column)
/// and compares probe cost against the scan. Estimates flow exclusively
/// through the [`CardinalityProvider`] — the planner never touches an
/// estimator directly.
pub fn plan(
    catalog: &Catalog,
    table: &TableId,
    provider: &dyn CardinalityProvider,
    pred: &Predicate,
    cost: &CostModel,
) -> AccessPath {
    let rows = catalog.table.row_count();
    let mut best = (cost.seq_scan(rows), AccessPath::SeqScan);
    for index in &catalog.indexes {
        // The driving range: the predicate restricted to the indexed column.
        let Some(constraint) = pred.constraints().iter().find(|c| c.column == index.column) else {
            continue; // predicate doesn't touch this index
        };
        let driving = Predicate::new().with_interval(index.column, constraint.range);
        let sel = provider.estimate(table, &driving);
        let c = cost.index_probe(rows, sel);
        if c < best.0 {
            best = (c, AccessPath::IndexProbe { column: index.column, driving_selectivity: sel });
        }
    }
    best.1
}

#[cfg(test)]
mod tests {
    use super::*;
    use quicksel_core::QuickSel;
    use quicksel_data::{ObservedQuery, Table};
    use quicksel_geometry::Domain;
    use quicksel_service::LearnerProvider;

    fn fixture() -> (Catalog, TableId, LearnerProvider) {
        let d = Domain::of_reals(&[("x", 0.0, 100.0), ("y", 0.0, 100.0)]);
        let mut t = Table::new(d.clone());
        // Dense cluster in x ∈ [0, 10): 90% of rows.
        for i in 0..9000 {
            t.push_row(&[(i % 100) as f64 / 10.0, (i % 97) as f64]);
        }
        for i in 0..1000 {
            t.push_row(&[10.0 + (i % 900) as f64 / 10.0, (i % 89) as f64]);
        }
        let table: TableId = "t".into();
        let provider =
            LearnerProvider::single(table.clone(), d.clone(), Box::new(QuickSel::new(d)));
        (Catalog::new(t).with_index(0), table, provider)
    }

    #[test]
    fn unconstrained_predicate_scans() {
        let (cat, t, provider) = fixture();
        let p = Predicate::new();
        assert_eq!(plan(&cat, &t, &provider, &p, &CostModel::default()), AccessPath::SeqScan);
    }

    #[test]
    fn predicate_on_unindexed_column_scans() {
        let (cat, t, provider) = fixture();
        let p = Predicate::new().range(1, 0.0, 1.0);
        assert_eq!(plan(&cat, &t, &provider, &p, &CostModel::default()), AccessPath::SeqScan);
    }

    #[test]
    fn uninformed_planner_uses_uniformity() {
        let (cat, t, provider) = fixture();
        // Under uniformity x ∈ [0, 5) looks like 5% — index looks good,
        // even though the data is clustered there (truth 45%).
        let p = Predicate::new().range(0, 0.0, 5.0);
        match plan(&cat, &t, &provider, &p, &CostModel::default()) {
            AccessPath::IndexProbe { driving_selectivity, .. } => {
                assert!((driving_selectivity - 0.05).abs() < 1e-9);
            }
            other => panic!("expected index probe, got {other:?}"),
        }
    }

    #[test]
    fn learning_flips_a_wrong_plan() {
        let (cat, t, provider) = fixture();
        let p = Predicate::new().range(0, 0.0, 5.0);
        let rect = p.to_rect(cat.table.domain());
        // Initially mis-planned as an index probe (see above). Feed the
        // true selectivity once through the provider; the planner flips
        // to the scan.
        let truth = cat.table.selectivity(&rect);
        assert!(truth > 0.4);
        provider.observe(&t, &ObservedQuery::new(rect, truth));
        assert_eq!(plan(&cat, &t, &provider, &p, &CostModel::default()), AccessPath::SeqScan);
    }

    #[test]
    fn truly_selective_predicate_keeps_the_index() {
        let (cat, t, provider) = fixture();
        let p = Predicate::new().range(0, 98.0, 99.0);
        let rect = p.to_rect(cat.table.domain());
        let truth = cat.table.selectivity(&rect);
        provider.observe(&t, &ObservedQuery::new(rect, truth));
        assert!(matches!(
            plan(&cat, &t, &provider, &p, &CostModel::default()),
            AccessPath::IndexProbe { .. }
        ));
    }

    #[test]
    fn unknown_table_plans_the_safe_scan() {
        let (cat, _, provider) = fixture();
        // A provider that has never heard of the table answers 1.0, so
        // the planner conservatively scans instead of probing blind.
        let ghost: TableId = "ghost".into();
        let p = Predicate::new().range(0, 0.0, 1.0);
        assert_eq!(plan(&cat, &ghost, &provider, &p, &CostModel::default()), AccessPath::SeqScan);
    }
}
