//! Cost-based access-path selection driven by selectivity estimates.

use crate::catalog::Catalog;
use crate::cost::CostModel;
use quicksel_geometry::Predicate;
use quicksel_service::{CardinalityProvider, TableId};

/// The physical plan chosen for a predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessPath {
    /// Scan every row, applying the full predicate.
    SeqScan,
    /// Probe the index on `column` with the predicate's range on that
    /// column, then apply the residual predicate to the fetched rows.
    IndexProbe {
        /// Which indexed column drives the probe.
        column: usize,
        /// Estimated selectivity of the index-driving range alone.
        driving_selectivity: f64,
    },
}

/// Candidate index probes for `pred`, as parallel vectors in catalog
/// index order: for each index whose column the predicate constrains,
/// the indexed column plus the *driving range* predicate (that column's
/// constraint alone — the index can only use one column). Parallel so
/// the probe vector can feed `estimate_many` directly, no cloning.
fn index_candidates(catalog: &Catalog, pred: &Predicate) -> (Vec<usize>, Vec<Predicate>) {
    let mut columns = Vec::new();
    let mut drivers = Vec::new();
    for index in &catalog.indexes {
        if let Some(c) = pred.constraints().iter().find(|c| c.column == index.column) {
            columns.push(index.column);
            drivers.push(Predicate::new().with_interval(index.column, c.range));
        }
    }
    (columns, drivers)
}

/// Picks the cheapest path given each candidate column's estimated
/// driving selectivity (parallel slices).
fn choose_path(
    rows: usize,
    cost: &CostModel,
    columns: &[usize],
    selectivities: &[f64],
) -> AccessPath {
    let mut best = (cost.seq_scan(rows), AccessPath::SeqScan);
    for (&column, &sel) in columns.iter().zip(selectivities) {
        let c = cost.index_probe(rows, sel);
        if c < best.0 {
            best = (c, AccessPath::IndexProbe { column, driving_selectivity: sel });
        }
    }
    best.1
}

/// Chooses the cheapest access path for `pred` on `table`.
///
/// All candidate-plan probes (one driving range per usable index) are
/// gathered first and estimated through **one**
/// [`CardinalityProvider::estimate_many`] call, so a serving-backed
/// provider answers every candidate from coherent model snapshots via
/// the batched SoA kernel instead of re-dispatching per index.
/// Estimates flow exclusively through the [`CardinalityProvider`] — the
/// planner never touches an estimator directly.
pub fn plan(
    catalog: &Catalog,
    table: &TableId,
    provider: &dyn CardinalityProvider,
    pred: &Predicate,
    cost: &CostModel,
) -> AccessPath {
    let (columns, drivers) = index_candidates(catalog, pred);
    if columns.is_empty() {
        return AccessPath::SeqScan;
    }
    let selectivities = provider.estimate_many(table, &drivers);
    choose_path(catalog.table.row_count(), cost, &columns, &selectivities)
}

/// [`plan`] fused with the executor's full-predicate estimate: one
/// batched provider call covers the full predicate *and* every
/// candidate driving range, so planning a query costs a single
/// estimation round-trip however many indexes compete. Returns the
/// chosen path plus the full predicate's estimated selectivity.
pub fn plan_with_estimate(
    catalog: &Catalog,
    table: &TableId,
    provider: &dyn CardinalityProvider,
    pred: &Predicate,
    cost: &CostModel,
) -> (AccessPath, f64) {
    let (columns, drivers) = index_candidates(catalog, pred);
    let mut probes: Vec<Predicate> = Vec::with_capacity(drivers.len() + 1);
    probes.push(pred.clone());
    probes.extend(drivers);
    let selectivities = provider.estimate_many(table, &probes);
    let path = choose_path(catalog.table.row_count(), cost, &columns, &selectivities[1..]);
    (path, selectivities[0])
}

#[cfg(test)]
mod tests {
    use super::*;
    use quicksel_core::QuickSel;
    use quicksel_data::{ObservedQuery, Table};
    use quicksel_geometry::Domain;
    use quicksel_service::LearnerProvider;

    fn fixture() -> (Catalog, TableId, LearnerProvider) {
        let d = Domain::of_reals(&[("x", 0.0, 100.0), ("y", 0.0, 100.0)]);
        let mut t = Table::new(d.clone());
        // Dense cluster in x ∈ [0, 10): 90% of rows.
        for i in 0..9000 {
            t.push_row(&[(i % 100) as f64 / 10.0, (i % 97) as f64]);
        }
        for i in 0..1000 {
            t.push_row(&[10.0 + (i % 900) as f64 / 10.0, (i % 89) as f64]);
        }
        let table: TableId = "t".into();
        let provider =
            LearnerProvider::single(table.clone(), d.clone(), Box::new(QuickSel::new(d)));
        (Catalog::new(t).with_index(0), table, provider)
    }

    #[test]
    fn unconstrained_predicate_scans() {
        let (cat, t, provider) = fixture();
        let p = Predicate::new();
        assert_eq!(plan(&cat, &t, &provider, &p, &CostModel::default()), AccessPath::SeqScan);
    }

    #[test]
    fn predicate_on_unindexed_column_scans() {
        let (cat, t, provider) = fixture();
        let p = Predicate::new().range(1, 0.0, 1.0);
        assert_eq!(plan(&cat, &t, &provider, &p, &CostModel::default()), AccessPath::SeqScan);
    }

    #[test]
    fn uninformed_planner_uses_uniformity() {
        let (cat, t, provider) = fixture();
        // Under uniformity x ∈ [0, 5) looks like 5% — index looks good,
        // even though the data is clustered there (truth 45%).
        let p = Predicate::new().range(0, 0.0, 5.0);
        match plan(&cat, &t, &provider, &p, &CostModel::default()) {
            AccessPath::IndexProbe { driving_selectivity, .. } => {
                assert!((driving_selectivity - 0.05).abs() < 1e-9);
            }
            other => panic!("expected index probe, got {other:?}"),
        }
    }

    #[test]
    fn learning_flips_a_wrong_plan() {
        let (cat, t, provider) = fixture();
        let p = Predicate::new().range(0, 0.0, 5.0);
        let rect = p.to_rect(cat.table.domain());
        // Initially mis-planned as an index probe (see above). Feed the
        // true selectivity once through the provider; the planner flips
        // to the scan.
        let truth = cat.table.selectivity(&rect);
        assert!(truth > 0.4);
        provider.observe(&t, &ObservedQuery::new(rect, truth));
        assert_eq!(plan(&cat, &t, &provider, &p, &CostModel::default()), AccessPath::SeqScan);
    }

    #[test]
    fn truly_selective_predicate_keeps_the_index() {
        let (cat, t, provider) = fixture();
        let p = Predicate::new().range(0, 98.0, 99.0);
        let rect = p.to_rect(cat.table.domain());
        let truth = cat.table.selectivity(&rect);
        provider.observe(&t, &ObservedQuery::new(rect, truth));
        assert!(matches!(
            plan(&cat, &t, &provider, &p, &CostModel::default()),
            AccessPath::IndexProbe { .. }
        ));
    }

    /// Provider wrapper that records the size of every `estimate_many`
    /// batch it receives.
    struct BatchSpy<'a> {
        inner: &'a dyn CardinalityProvider,
        batches: std::cell::RefCell<Vec<usize>>,
    }
    impl CardinalityProvider for BatchSpy<'_> {
        fn estimate(&self, table: &TableId, pred: &Predicate) -> f64 {
            self.batches.borrow_mut().push(1);
            self.inner.estimate(table, pred)
        }
        fn estimate_many(&self, table: &TableId, preds: &[Predicate]) -> Vec<f64> {
            self.batches.borrow_mut().push(preds.len());
            self.inner.estimate_many(table, preds)
        }
        fn observe(&self, table: &TableId, feedback: &quicksel_data::ObservedQuery) {
            self.inner.observe(table, feedback);
        }
        fn sync_data(&self, table: &TableId, data: &quicksel_data::Table, changed_rows: usize) {
            self.inner.sync_data(table, data, changed_rows);
        }
        fn version(&self, table: &TableId) -> u64 {
            self.inner.version(table)
        }
    }

    #[test]
    fn candidate_probes_go_out_as_one_batch() {
        // Two usable indexes ⇒ plan() issues exactly one 2-probe batch,
        // and plan_with_estimate() one 3-probe batch (full pred first).
        let (cat, t, provider) = fixture();
        let cat = cat.with_index(1);
        let p = Predicate::new().range(0, 20.0, 30.0).range(1, 0.0, 5.0);
        let spy = BatchSpy { inner: &provider, batches: std::cell::RefCell::new(Vec::new()) };
        let batched_plan = plan(&cat, &t, &spy, &p, &CostModel::default());
        assert_eq!(spy.batches.borrow().as_slice(), &[2]);
        spy.batches.borrow_mut().clear();
        let (fused_plan, full_sel) = plan_with_estimate(&cat, &t, &spy, &p, &CostModel::default());
        assert_eq!(spy.batches.borrow().as_slice(), &[3]);
        // Batched and fused planning agree with each other and with the
        // scalar probes they replace.
        assert_eq!(batched_plan, fused_plan);
        assert!((full_sel - provider.estimate(&t, &p)).abs() < 1e-12);
    }

    #[test]
    fn unknown_table_plans_the_safe_scan() {
        let (cat, _, provider) = fixture();
        // A provider that has never heard of the table answers 1.0, so
        // the planner conservatively scans instead of probing blind.
        let ghost: TableId = "ghost".into();
        let p = Predicate::new().range(0, 0.0, 1.0);
        assert_eq!(plan(&cat, &ghost, &provider, &p, &CostModel::default()), AccessPath::SeqScan);
    }
}
