//! Join cardinality estimation from per-relation selectivity estimators.
//!
//! §2.2 of the paper: "any selectivity estimation technique for a single
//! relation can be applied to estimating selectivity of a join query
//! whenever the predicates on the individual relations are independent of
//! the join conditions." Under that independence assumption,
//!
//! ```text
//! |σ_p(R) ⋈ σ_q(S)|  ≈  |R ⋈ S| · ŝ_R(p) · ŝ_S(q)
//! ```
//!
//! where `|R ⋈ S|` is the unfiltered join cardinality (a single number the
//! catalog can maintain cheaply) and `ŝ_R`, `ŝ_S` come from each
//! relation's own query-driven estimator.

use quicksel_data::Table;
use quicksel_geometry::Predicate;
use quicksel_service::{CardinalityProvider, TableId};

/// Estimates `|σ_p(R) ⋈ σ_q(S)|` under predicate/join independence.
///
/// Thin wrapper over the provider's
/// [`estimate_join`](CardinalityProvider::estimate_join) hook: the
/// default provider implementation is the independence product above;
/// join-aware providers may refine it.
pub fn estimate_join_cardinality(
    base_join_cardinality: f64,
    provider: &dyn CardinalityProvider,
    r_table: &TableId,
    r_pred: &Predicate,
    s_table: &TableId,
    s_pred: &Predicate,
) -> f64 {
    provider.estimate_join(base_join_cardinality, r_table, r_pred, s_table, s_pred)
}

/// Batched independence-product join estimates for a set of candidate
/// join plans over the same table pair: all left-side probes go out as
/// one [`CardinalityProvider::estimate_many`] call on `r_table`, all
/// right-side probes as one call on `s_table`, so a join enumerator
/// pricing N candidate predicate pushdowns costs two batched estimation
/// round-trips (each served from coherent snapshots) instead of `2·N`
/// scalar ones.
///
/// Equals mapping the provider's *default*
/// [`estimate_join`](CardinalityProvider::estimate_join) (the §2.2
/// independence product) over `candidates`; providers overriding
/// `estimate_join` with join-aware models should be consulted per pair
/// instead.
pub fn estimate_join_cardinalities(
    base_join_cardinality: f64,
    provider: &dyn CardinalityProvider,
    r_table: &TableId,
    s_table: &TableId,
    candidates: &[(Predicate, Predicate)],
) -> Vec<f64> {
    let lefts: Vec<Predicate> = candidates.iter().map(|(l, _)| l.clone()).collect();
    let rights: Vec<Predicate> = candidates.iter().map(|(_, r)| r.clone()).collect();
    let left_sels = provider.estimate_many(r_table, &lefts);
    let right_sels = provider.estimate_many(s_table, &rights);
    left_sels.iter().zip(&right_sels).map(|(&l, &r)| base_join_cardinality * l * r).collect()
}

/// Exact `|σ_p(R) ⋈_{R.rc = S.sc} σ_q(S)|` by hash join on (rounded)
/// column values — the ground-truth oracle for tests and calibration.
///
/// Values are matched after truncation toward negative infinity, so
/// real-encoded integer columns (§2.2) join on their integer identity.
pub fn exact_equijoin_cardinality(
    r_table: &Table,
    r_col: usize,
    r_pred: &Predicate,
    s_table: &Table,
    s_col: usize,
    s_pred: &Predicate,
) -> u64 {
    use std::collections::HashMap;
    let r_rect = r_pred.to_rect(r_table.domain());
    let s_rect = s_pred.to_rect(s_table.domain());
    // Build side: count of each key among qualifying R rows.
    let mut build: HashMap<i64, u64> = HashMap::new();
    for i in 0..r_table.row_count() {
        let row = r_table.row(i);
        if r_rect.contains_point(&row) {
            *build.entry(row[r_col].floor() as i64).or_insert(0) += 1;
        }
    }
    // Probe side.
    let mut total = 0u64;
    for i in 0..s_table.row_count() {
        let row = s_table.row(i);
        if s_rect.contains_point(&row) {
            if let Some(&c) = build.get(&(row[s_col].floor() as i64)) {
                total += c;
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use quicksel_core::QuickSel;
    use quicksel_data::ObservedQuery;
    use quicksel_geometry::Domain;
    use quicksel_service::LearnerProvider;
    use rand::{Rng, SeedableRng};

    /// Two tables sharing an integer join key in 0..50 with skewed key
    /// frequencies and one payload column each.
    fn tables() -> (Table, Table) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let dr = Domain::of_reals(&[("key", 0.0, 50.0), ("a", 0.0, 100.0)]);
        let ds = Domain::of_reals(&[("key", 0.0, 50.0), ("b", 0.0, 100.0)]);
        let mut r = Table::new(dr);
        let mut s = Table::new(ds);
        for _ in 0..4000 {
            let key = (rng.gen::<f64>().powi(2) * 50.0).floor().min(49.0);
            r.push_row(&[key + 0.5, rng.gen::<f64>() * 100.0]);
        }
        for _ in 0..3000 {
            let key = (rng.gen::<f64>().powi(2) * 50.0).floor().min(49.0);
            s.push_row(&[key + 0.5, rng.gen::<f64>() * 100.0]);
        }
        (r, s)
    }

    #[test]
    fn exact_join_counts_pairs() {
        let dr = Domain::of_reals(&[("key", 0.0, 4.0)]);
        let mut r = Table::new(dr.clone());
        let mut s = Table::new(dr);
        for k in [0.5, 0.5, 1.5] {
            r.push_row(&[k]);
        }
        for k in [0.5, 1.5, 1.5, 3.5] {
            s.push_row(&[k]);
        }
        // key 0: 2×1, key 1: 1×2, key 3: 0×1 → 4 pairs.
        let n = exact_equijoin_cardinality(&r, 0, &Predicate::new(), &s, 0, &Predicate::new());
        assert_eq!(n, 4);
    }

    #[test]
    fn independence_estimate_tracks_truth_for_payload_predicates() {
        // Predicates on the payload columns only — independent of the join
        // key, the regime §2.2 sanctions.
        let (r, s) = tables();
        let base =
            exact_equijoin_cardinality(&r, 0, &Predicate::new(), &s, 0, &Predicate::new()) as f64;
        assert!(base > 0.0);

        // One provider serves both relations; each learns from its own
        // query feedback.
        let provider = LearnerProvider::new();
        provider.register("r", r.domain().clone(), Box::new(QuickSel::new(r.domain().clone())));
        provider.register("s", s.domain().clone(), Box::new(QuickSel::new(s.domain().clone())));
        let (rid, sid): (TableId, TableId) = ("r".into(), "s".into());
        let mut rng = rand::rngs::StdRng::seed_from_u64(88);
        for _ in 0..40 {
            let lo = rng.gen::<f64>() * 80.0;
            let pr = Predicate::new().range(1, lo, lo + 20.0);
            let rect = pr.to_rect(r.domain());
            provider.observe(&rid, &ObservedQuery::new(rect.clone(), r.selectivity(&rect)));
            let rect_s = pr.to_rect(s.domain());
            provider.observe(&sid, &ObservedQuery::new(rect_s.clone(), s.selectivity(&rect_s)));
        }

        for lo in [0.0, 25.0, 50.0] {
            let pr = Predicate::new().range(1, lo, lo + 30.0);
            let ps = Predicate::new().range(1, lo + 10.0, lo + 45.0);
            let truth = exact_equijoin_cardinality(&r, 0, &pr, &s, 0, &ps) as f64;
            let est = estimate_join_cardinality(base, &provider, &rid, &pr, &sid, &ps);
            // Independence holds by construction, so the estimate should
            // land within ~25% of the truth.
            assert!(
                (est - truth).abs() <= 0.25 * truth + 1.0,
                "lo={lo}: est {est} vs truth {truth}"
            );
        }
    }

    #[test]
    fn batched_join_candidates_match_per_pair_estimates() {
        let (r, s) = tables();
        let base =
            exact_equijoin_cardinality(&r, 0, &Predicate::new(), &s, 0, &Predicate::new()) as f64;
        let provider = LearnerProvider::new();
        provider.register("r", r.domain().clone(), Box::new(QuickSel::new(r.domain().clone())));
        provider.register("s", s.domain().clone(), Box::new(QuickSel::new(s.domain().clone())));
        let (rid, sid): (TableId, TableId) = ("r".into(), "s".into());
        for lo in [0.0, 20.0, 40.0] {
            let pr = Predicate::new().range(1, lo, lo + 30.0);
            let rect = pr.to_rect(r.domain());
            provider.observe(&rid, &ObservedQuery::new(rect.clone(), r.selectivity(&rect)));
            let rect_s = pr.to_rect(s.domain());
            provider.observe(&sid, &ObservedQuery::new(rect_s.clone(), s.selectivity(&rect_s)));
        }
        let candidates: Vec<(Predicate, Predicate)> = (0..5)
            .map(|i| {
                let lo = i as f64 * 15.0;
                (
                    Predicate::new().range(1, lo, lo + 25.0),
                    Predicate::new().range(1, lo + 5.0, lo + 40.0),
                )
            })
            .collect();
        let batched = estimate_join_cardinalities(base, &provider, &rid, &sid, &candidates);
        assert_eq!(batched.len(), candidates.len());
        for ((pr, ps), b) in candidates.iter().zip(&batched) {
            let scalar = estimate_join_cardinality(base, &provider, &rid, pr, &sid, ps);
            assert!((scalar - b).abs() < 1e-9, "batched {b} vs scalar {scalar}");
        }
    }

    #[test]
    fn correlated_key_predicates_break_independence() {
        // Negative control: a predicate on the join key itself violates
        // the independence assumption and the plain product misestimates —
        // exactly why the paper leaves join-key correlations to future
        // work (§8).
        let (r, s) = tables();
        let base =
            exact_equijoin_cardinality(&r, 0, &Predicate::new(), &s, 0, &Predicate::new()) as f64;
        // Oracle per-relation selectivities (perfect estimators).
        let pr = Predicate::new().range(0, 0.0, 5.0); // hot keys
        let ps = Predicate::new().range(0, 0.0, 5.0);
        let sr = r.selectivity(&pr.to_rect(r.domain()));
        let ss = s.selectivity(&ps.to_rect(s.domain()));
        let est = base * sr * ss;
        let truth = exact_equijoin_cardinality(&r, 0, &pr, &s, 0, &ps) as f64;
        // The product underestimates hot-key joins badly (>2x here).
        assert!(truth > 2.0 * est, "truth {truth} vs naive product {est}");
    }
}
