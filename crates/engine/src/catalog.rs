//! The system catalog: table data and indexes.
//!
//! Statistics deliberately live *outside* the catalog: the planner reads
//! estimates through the
//! [`CardinalityProvider`](quicksel_service::CardinalityProvider) seam,
//! so inserting rows (a `&mut Catalog` operation) and estimating (a
//! `&self` provider operation) no longer share one mutable handle.

use quicksel_data::Table;

/// A sorted single-column index: `(value, row_id)` pairs ordered by value,
/// supporting `O(log N + K)` range probes.
#[derive(Debug, Clone)]
pub struct SortedIndex {
    /// Indexed column.
    pub column: usize,
    entries: Vec<(f64, u32)>,
}

impl SortedIndex {
    /// Builds the index by sorting the column.
    pub fn build(table: &Table, column: usize) -> Self {
        let mut entries: Vec<(f64, u32)> =
            table.column(column).iter().enumerate().map(|(i, &v)| (v, i as u32)).collect();
        entries.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite column values"));
        Self { column, entries }
    }

    /// Row ids with `lo <= value < hi`, in index order.
    pub fn range(&self, lo: f64, hi: f64) -> impl Iterator<Item = u32> + '_ {
        let start = self.entries.partition_point(|&(v, _)| v < lo);
        self.entries[start..].iter().take_while(move |&&(v, _)| v < hi).map(|&(_, r)| r)
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the index is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The catalog owns the table and its indexes. The third §6 integration
/// point — the statistics module — is reached through the engine's
/// [`CardinalityProvider`](quicksel_service::CardinalityProvider), never
/// stored here.
pub struct Catalog {
    /// The base table. Crate-private (like [`insert_rows`](Self::insert_rows))
    /// so external mutation cannot bypass index rebuilds and the
    /// provider's churn notification; read it through
    /// [`table`](Self::table).
    pub(crate) table: Table,
    /// Available single-column indexes; read through
    /// [`indexes`](Self::indexes).
    pub(crate) indexes: Vec<SortedIndex>,
}

impl Catalog {
    /// Creates a catalog around a table.
    pub fn new(table: Table) -> Self {
        Self { table, indexes: Vec::new() }
    }

    /// The base table (read-only — inserts go through
    /// [`Engine::insert_rows`](crate::Engine::insert_rows)).
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// The available indexes, in creation order.
    pub fn indexes(&self) -> &[SortedIndex] {
        &self.indexes
    }

    /// Adds a sorted index on `column` (builder style).
    pub fn with_index(mut self, column: usize) -> Self {
        self.indexes.push(SortedIndex::build(&self.table, column));
        self
    }

    /// The index on `column`, if one exists.
    pub fn index_on(&self, column: usize) -> Option<&SortedIndex> {
        self.indexes.iter().find(|i| i.column == column)
    }

    /// Appends rows and rebuilds the affected indexes. Crate-private on
    /// purpose: data churn must be reported to the provider, so the only
    /// public insert path is
    /// [`Engine::insert_rows`](crate::Engine::insert_rows), which
    /// forwards it to
    /// [`sync_data`](quicksel_service::CardinalityProvider::sync_data) —
    /// a public method here would compile against stale statistics
    /// silently.
    pub(crate) fn insert_rows(&mut self, rows: &[Vec<f64>]) {
        for r in rows {
            self.table.push_row(r);
        }
        // Indexes are rebuilt eagerly; a production engine would merge.
        for i in 0..self.indexes.len() {
            let col = self.indexes[i].column;
            self.indexes[i] = SortedIndex::build(&self.table, col);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quicksel_geometry::Domain;

    fn table() -> Table {
        let d = Domain::of_reals(&[("x", 0.0, 10.0), ("y", 0.0, 10.0)]);
        let mut t = Table::new(d);
        for i in 0..100 {
            t.push_row(&[(i % 10) as f64 + 0.5, (i / 10) as f64 + 0.5]);
        }
        t
    }

    #[test]
    fn index_range_probe_matches_scan() {
        let t = table();
        let idx = SortedIndex::build(&t, 0);
        assert_eq!(idx.len(), 100);
        let hits: Vec<u32> = idx.range(2.0, 5.0).collect();
        assert_eq!(hits.len(), 30); // 3 of 10 distinct values × 10 rows
        for r in hits {
            let v = t.column(0)[r as usize];
            assert!((2.0..5.0).contains(&v));
        }
    }

    #[test]
    fn empty_range_probe() {
        let t = table();
        let idx = SortedIndex::build(&t, 1);
        assert_eq!(idx.range(20.0, 30.0).count(), 0);
        assert_eq!(idx.range(5.0, 5.0).count(), 0);
    }

    #[test]
    fn catalog_lookup_and_insert() {
        let t = table();
        let mut cat = Catalog::new(t).with_index(0);
        assert!(cat.index_on(0).is_some());
        assert!(cat.index_on(1).is_none());
        cat.insert_rows(&[vec![3.3, 4.4], vec![6.6, 7.7]]);
        assert_eq!(cat.table.row_count(), 102);
        assert_eq!(cat.index_on(0).unwrap().len(), 102);
    }
}
