//! Plan execution with the paper's feedback loop: every executed filter
//! reports its actual selectivity to the estimator (the `FilterExec`
//! integration point of §6) — through the [`CardinalityProvider`], never
//! a directly-held estimator.

use crate::catalog::Catalog;
use crate::cost::CostModel;
use crate::planner::{plan_with_estimate, AccessPath};
use quicksel_data::ObservedQuery;
use quicksel_geometry::Predicate;
use quicksel_service::{CardinalityProvider, LearnerProvider, TableId};
use std::sync::Arc;

/// Outcome of executing one query.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// The plan the optimizer chose.
    pub path: AccessPath,
    /// Rows satisfying the predicate.
    pub rows_returned: usize,
    /// Rows the plan had to examine (scan: all; probe: the driving range).
    pub rows_examined: usize,
    /// The actual selectivity, as reported to the provider.
    pub actual_selectivity: f64,
    /// The estimate the planner used for the full predicate.
    pub estimated_selectivity: f64,
    /// Modeled execution cost actually incurred (sequential rows at unit
    /// cost, index-fetched rows at the random-access penalty).
    pub cost_incurred: f64,
}

/// Panics when `provider` knows `table` under a different domain than
/// the catalog's; returns whether the check could run (the provider
/// knew the table).
fn check_domain(
    provider: &dyn CardinalityProvider,
    table: &TableId,
    catalog: &Catalog,
    when: &str,
) -> bool {
    match provider.domain_of(table) {
        Some(provider_domain) => {
            assert_eq!(
                &provider_domain,
                catalog.table.domain(),
                "provider and catalog disagree about the domain of table {table} ({when})"
            );
            true
        }
        None => false,
    }
}

/// The engine: catalog + cost model + execution/feedback loop, with all
/// estimation routed through a shared [`CardinalityProvider`].
///
/// Several engines (one per table) can share one provider — an
/// [`EstimatorRegistry`](quicksel_service::EstimatorRegistry) serving
/// every table, or a per-thread
/// [`CachedProvider`](quicksel_service::CachedProvider) over it.
pub struct Engine {
    catalog: Catalog,
    table: TableId,
    provider: Arc<dyn CardinalityProvider>,
    cost: CostModel,
    /// Provider generation at which the domain check last passed, or
    /// `None` if it has not passed yet (table unknown so far). The check
    /// re-runs whenever the provider's generation moves — registration,
    /// replacement, or removal of tables — so DDL that re-registers this
    /// table under a different domain panics instead of silently
    /// desynchronizing the learning loop.
    domain_checked_at: Option<u64>,
    /// Cumulative rows examined across all executed queries.
    pub total_rows_examined: usize,
    /// Cumulative modeled cost — the quantity the optimizer minimizes and
    /// the one that shrinks as estimates improve.
    pub total_cost: f64,
}

impl Engine {
    /// Creates an engine over `catalog`, reading and feeding `table`'s
    /// estimates through `provider`, with the default cost model.
    pub fn new(
        catalog: Catalog,
        table: impl Into<TableId>,
        provider: Arc<dyn CardinalityProvider>,
    ) -> Self {
        Self::with_cost(catalog, table, provider, CostModel::default())
    }

    /// Creates an engine with an explicit cost model.
    ///
    /// # Panics
    /// Panics when the provider knows `table` under a *different* domain
    /// than the catalog's — estimates would convert predicates against
    /// one geometry while feedback reported rectangles from another,
    /// silently desynchronizing the learning loop.
    pub fn with_cost(
        catalog: Catalog,
        table: impl Into<TableId>,
        provider: Arc<dyn CardinalityProvider>,
        cost: CostModel,
    ) -> Self {
        let table = table.into();
        // Read the generation before checking: if DDL races in between,
        // the next execute sees a moved generation and re-checks.
        let generation = provider.generation();
        let domain_checked_at =
            check_domain(&*provider, &table, &catalog, "at engine construction")
                .then_some(generation);
        Self {
            catalog,
            table,
            provider,
            cost,
            domain_checked_at,
            total_rows_examined: 0,
            total_cost: 0.0,
        }
    }

    /// Convenience for single-table setups: wraps `learner` in a
    /// [`LearnerProvider`] under the table id `"t0"`.
    pub fn with_learner(catalog: Catalog, learner: Box<dyn quicksel_data::Learn + Send>) -> Self {
        let domain = catalog.table.domain().clone();
        let provider = Arc::new(LearnerProvider::single("t0", domain, learner));
        Self::new(catalog, "t0", provider)
    }

    /// Shared access to the catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable access to the catalog. Prefer
    /// [`insert_rows`](Self::insert_rows) for data churn — raw catalog
    /// mutation does not notify the provider.
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// The table this engine executes against.
    pub fn table_id(&self) -> &TableId {
        &self.table
    }

    /// The provider estimates flow through.
    pub fn provider(&self) -> &Arc<dyn CardinalityProvider> {
        &self.provider
    }

    /// Appends rows to the table, rebuilds indexes, and reports the churn
    /// to the provider (drives the scan-based estimators' auto-update
    /// rules).
    pub fn insert_rows(&mut self, rows: &[Vec<f64>]) {
        self.catalog.insert_rows(rows);
        self.provider.sync_data(&self.table, &self.catalog.table, rows.len());
    }

    /// Plans, executes, and **learns from** one conjunctive filter query.
    ///
    /// # Panics
    /// Panics when the provider has (re-)registered `table` — at any
    /// point after engine construction — under a different domain than
    /// the catalog's (same seam the construction-time check guards).
    pub fn execute(&mut self, pred: &Predicate) -> QueryResult {
        // One atomic load per query; the full check re-runs only when
        // the provider's table set changed (DDL-frequency).
        let generation = self.provider.generation();
        if self.domain_checked_at != Some(generation) {
            self.domain_checked_at =
                check_domain(&*self.provider, &self.table, &self.catalog, "before execution")
                    .then_some(generation);
        }
        let rect = pred.to_rect(self.catalog.table.domain());
        // One batched provider call per query: the full predicate plus
        // every candidate index's driving range, answered from coherent
        // snapshots instead of a scalar estimate per candidate.
        let (path, estimated_selectivity) =
            plan_with_estimate(&self.catalog, &self.table, &*self.provider, pred, &self.cost);

        let (rows_returned, rows_examined) = match &path {
            AccessPath::SeqScan => {
                let hits = self.catalog.table.count(&rect);
                (hits, self.catalog.table.row_count())
            }
            AccessPath::IndexProbe { column, .. } => {
                let index =
                    self.catalog.index_on(*column).expect("planner only probes existing indexes");
                let side = rect.side(*column);
                let mut examined = 0usize;
                let mut hits = 0usize;
                let table = &self.catalog.table;
                for row_id in index.range(side.lo, side.hi) {
                    examined += 1;
                    let row = table.row(row_id as usize);
                    if rect.contains_point(&row) {
                        hits += 1;
                    }
                }
                (hits, examined)
            }
        };
        self.total_rows_examined += rows_examined;
        let cost_incurred = match &path {
            AccessPath::SeqScan => rows_examined as f64 * self.cost.seq_row_cost,
            AccessPath::IndexProbe { .. } => {
                self.cost.index_descend_cost + rows_examined as f64 * self.cost.index_row_cost
            }
        };
        self.total_cost += cost_incurred;

        // The feedback loop: report the actual selectivity (free — the
        // engine just counted the qualifying rows).
        let n = self.catalog.table.row_count().max(1);
        let actual_selectivity = rows_returned as f64 / n as f64;
        self.provider.observe(&self.table, &ObservedQuery::new(rect, actual_selectivity));

        QueryResult {
            path,
            rows_returned,
            rows_examined,
            actual_selectivity,
            estimated_selectivity,
            cost_incurred,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use quicksel_core::{QuickSel, QuickSelConfig, RefinePolicy};
    use quicksel_data::Table;
    use quicksel_geometry::Domain;

    fn engine() -> Engine {
        let d = Domain::of_reals(&[("x", 0.0, 100.0), ("y", 0.0, 100.0)]);
        let mut t = Table::new(d.clone());
        // 90% of rows clustered in x ∈ [0, 10).
        for i in 0..9000 {
            t.push_row(&[(i % 100) as f64 / 10.0, (i % 97) as f64]);
        }
        for i in 0..1000 {
            t.push_row(&[10.0 + (i % 900) as f64 / 10.0, (i % 89) as f64]);
        }
        let est = QuickSel::new(d);
        Engine::with_learner(Catalog::new(t).with_index(0), Box::new(est))
    }

    #[test]
    fn scan_and_probe_agree_on_row_counts() {
        let mut e = engine();
        let p = Predicate::new().range(0, 20.0, 30.0).range(1, 0.0, 50.0);
        let r1 = e.execute(&p);
        // Whatever the path, returned rows must equal the true count.
        let rect = p.to_rect(e.catalog().table.domain());
        assert_eq!(r1.rows_returned, e.catalog().table.count(&rect));
        assert!((r1.actual_selectivity - e.catalog().table.selectivity(&rect)).abs() < 1e-12);
    }

    #[test]
    fn feedback_reaches_the_provider() {
        let mut e = engine();
        let p = Predicate::new().range(0, 0.0, 5.0);
        let before = e.provider().version(e.table_id());
        e.execute(&p);
        assert!(e.provider().version(e.table_id()) > before);
    }

    #[test]
    fn learning_reduces_execution_cost() {
        // Run the same mis-estimated workload twice: once fresh (uniform
        // prior mis-plans the clustered range as a cheap-looking index
        // probe that random-accesses 45% of the table), once after warmup.
        // The learned engine must incur lower modeled cost.
        let workload: Vec<Predicate> = (0..20)
            .map(|i| {
                let lo = (i % 5) as f64;
                Predicate::new().range(0, lo, lo + 5.0)
            })
            .collect();

        let mut cold = engine();
        for p in &workload {
            cold.execute(p);
        }
        let cold_cost = cold.total_cost;

        let mut warm = engine();
        for p in &workload {
            warm.execute(p); // warmup pass (estimator learns)
        }
        warm.total_cost = 0.0;
        for p in &workload {
            warm.execute(p); // measured pass
        }
        assert!(warm.total_cost < cold_cost, "warm {} vs cold {}", warm.total_cost, cold_cost);
    }

    #[test]
    fn estimates_improve_over_the_run() {
        let cfg = QuickSelConfig { refine_policy: RefinePolicy::EveryQuery, ..Default::default() };
        let d = Domain::of_reals(&[("x", 0.0, 100.0), ("y", 0.0, 100.0)]);
        let mut t = Table::new(d.clone());
        for i in 0..5000 {
            t.push_row(&[(i % 100) as f64 / 2.0, (i % 83) as f64]);
        }
        let est = QuickSel::with_config(d, cfg);
        let mut e = Engine::with_learner(Catalog::new(t).with_index(0), Box::new(est));
        let mut early_err = 0.0;
        let mut late_err = 0.0;
        for i in 0..40 {
            let lo = (i % 8) as f64 * 6.0;
            let p = Predicate::new().range(0, lo, lo + 6.0);
            let r = e.execute(&p);
            let err = (r.estimated_selectivity - r.actual_selectivity).abs();
            if i < 8 {
                early_err += err;
            } else if i >= 32 {
                late_err += err;
            }
        }
        assert!(late_err < early_err, "late {late_err} vs early {early_err}");
    }

    #[test]
    fn inserts_keep_engine_consistent() {
        let mut e = engine();
        let rows: Vec<Vec<f64>> = (0..500).map(|i| vec![50.0, (i % 100) as f64]).collect();
        e.insert_rows(&rows);
        let p = Predicate::new().range(0, 49.5, 50.5);
        let r = e.execute(&p);
        assert!(r.rows_returned >= 500);
    }

    #[test]
    #[should_panic(expected = "disagree about the domain")]
    fn mismatched_provider_domain_is_rejected_at_construction() {
        let catalog_domain = Domain::of_reals(&[("x", 0.0, 100.0), ("y", 0.0, 100.0)]);
        let provider_domain = Domain::of_reals(&[("x", 0.0, 10.0), ("y", 0.0, 10.0)]);
        let t = Table::new(catalog_domain);
        let provider = Arc::new(quicksel_service::LearnerProvider::single(
            "t",
            provider_domain.clone(),
            Box::new(QuickSel::new(provider_domain)),
        ));
        let _ = Engine::new(Catalog::new(t), "t", provider);
    }

    #[test]
    #[should_panic(expected = "disagree about the domain")]
    fn late_registration_with_wrong_domain_is_caught_on_execute() {
        use quicksel_service::EstimatorRegistry;
        let catalog_domain = Domain::of_reals(&[("x", 0.0, 100.0), ("y", 0.0, 100.0)]);
        let mut t = Table::new(catalog_domain);
        t.push_row(&[1.0, 1.0]);
        let registry: Arc<EstimatorRegistry<QuickSel>> = Arc::new(EstimatorRegistry::new());
        // Table unknown at construction: the check is deferred, not skipped.
        let mut engine = Engine::new(
            Catalog::new(t),
            "t",
            Arc::clone(&registry) as Arc<dyn CardinalityProvider>,
        );
        let wrong = Domain::of_reals(&[("x", 0.0, 10.0), ("y", 0.0, 10.0)]);
        registry.register_with("t", wrong.clone(), 2, |i| {
            QuickSel::builder(wrong.clone()).seed(i as u64).build()
        });
        let _ = engine.execute(&Predicate::new().range(0, 0.0, 5.0));
    }

    #[test]
    #[should_panic(expected = "disagree about the domain")]
    fn reregistration_with_wrong_domain_is_caught_on_next_execute() {
        use quicksel_service::EstimatorRegistry;
        let catalog_domain = Domain::of_reals(&[("x", 0.0, 100.0), ("y", 0.0, 100.0)]);
        let mut t = Table::new(catalog_domain.clone());
        t.push_row(&[1.0, 1.0]);
        let registry: Arc<EstimatorRegistry<QuickSel>> = Arc::new(EstimatorRegistry::new());
        registry.register_with("t", catalog_domain.clone(), 2, |i| {
            QuickSel::builder(catalog_domain.clone()).seed(i as u64).build()
        });
        // Passes the construction-time check…
        let mut engine = Engine::new(
            Catalog::new(t),
            "t",
            Arc::clone(&registry) as Arc<dyn CardinalityProvider>,
        );
        engine.execute(&Predicate::new().range(0, 0.0, 5.0));
        // …then DDL swaps the table in under a different domain: the
        // generation moved, so the next execute re-checks and panics.
        let wrong = Domain::of_reals(&[("x", 0.0, 10.0), ("y", 0.0, 10.0)]);
        registry.remove(&"t".into());
        registry.register_with("t", wrong.clone(), 2, |i| {
            QuickSel::builder(wrong.clone()).seed(i as u64).build()
        });
        let _ = engine.execute(&Predicate::new().range(0, 0.0, 5.0));
    }

    #[test]
    fn engines_share_one_provider_across_tables() {
        use quicksel_service::{EstimatorRegistry, TableId};
        let registry: Arc<EstimatorRegistry<QuickSel>> = Arc::new(EstimatorRegistry::new());
        let mut engines = Vec::new();
        for name in ["r", "s"] {
            let d = Domain::of_reals(&[("x", 0.0, 100.0), ("y", 0.0, 100.0)]);
            let mut t = Table::new(d.clone());
            for i in 0..2000 {
                t.push_row(&[(i % 100) as f64, (i % 97) as f64]);
            }
            registry.register_with(name, d.clone(), 2, |i| {
                QuickSel::builder(d.clone()).seed(i as u64).build()
            });
            engines.push(Engine::new(
                Catalog::new(t).with_index(0),
                name,
                Arc::clone(&registry) as Arc<dyn CardinalityProvider>,
            ));
        }
        for e in &mut engines {
            for i in 0..5 {
                let lo = (i * 13 % 80) as f64;
                e.execute(&Predicate::new().range(0, lo, lo + 10.0));
            }
        }
        // Both tables learned independently inside the shared registry.
        assert!(registry.version(&TableId::from("r")) > 0);
        assert!(registry.version(&TableId::from("s")) > 0);
        assert_eq!(registry.stats().total.queries_ingested, 10);
    }
}
