//! Plan execution with the paper's feedback loop: every executed filter
//! reports its actual selectivity to the estimator (the `FilterExec`
//! integration point of §6).

use crate::catalog::Catalog;
use crate::cost::CostModel;
use crate::planner::{plan, AccessPath};
use quicksel_data::ObservedQuery;
use quicksel_geometry::Predicate;

/// Outcome of executing one query.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// The plan the optimizer chose.
    pub path: AccessPath,
    /// Rows satisfying the predicate.
    pub rows_returned: usize,
    /// Rows the plan had to examine (scan: all; probe: the driving range).
    pub rows_examined: usize,
    /// The actual selectivity, as reported to the estimator.
    pub actual_selectivity: f64,
    /// The estimate the planner used for the full predicate.
    pub estimated_selectivity: f64,
    /// Modeled execution cost actually incurred (sequential rows at unit
    /// cost, index-fetched rows at the random-access penalty).
    pub cost_incurred: f64,
}

/// The engine: catalog + cost model + execution/feedback loop.
pub struct Engine {
    catalog: Catalog,
    cost: CostModel,
    /// Cumulative rows examined across all executed queries.
    pub total_rows_examined: usize,
    /// Cumulative modeled cost — the quantity the optimizer minimizes and
    /// the one that shrinks as estimates improve.
    pub total_cost: f64,
}

impl Engine {
    /// Creates an engine with the default cost model.
    pub fn new(catalog: Catalog) -> Self {
        Self::with_cost(catalog, CostModel::default())
    }

    /// Creates an engine with an explicit cost model.
    pub fn with_cost(catalog: Catalog, cost: CostModel) -> Self {
        Self { catalog, cost, total_rows_examined: 0, total_cost: 0.0 }
    }

    /// Shared access to the catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable access to the catalog (inserts, estimator inspection).
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// Plans, executes, and **learns from** one conjunctive filter query.
    pub fn execute(&mut self, pred: &Predicate) -> QueryResult {
        let domain = self.catalog.table.domain().clone();
        let rect = pred.to_rect(&domain);
        let estimated_selectivity = self.catalog.estimator.estimate(&rect);
        let path = plan(&self.catalog, pred, &self.cost);

        let (rows_returned, rows_examined) = match &path {
            AccessPath::SeqScan => {
                let hits = self.catalog.table.count(&rect);
                (hits, self.catalog.table.row_count())
            }
            AccessPath::IndexProbe { column, .. } => {
                let index =
                    self.catalog.index_on(*column).expect("planner only probes existing indexes");
                let side = rect.side(*column);
                let mut examined = 0usize;
                let mut hits = 0usize;
                let table = &self.catalog.table;
                for row_id in index.range(side.lo, side.hi) {
                    examined += 1;
                    let row = table.row(row_id as usize);
                    if rect.contains_point(&row) {
                        hits += 1;
                    }
                }
                (hits, examined)
            }
        };
        self.total_rows_examined += rows_examined;
        let cost_incurred = match &path {
            AccessPath::SeqScan => rows_examined as f64 * self.cost.seq_row_cost,
            AccessPath::IndexProbe { .. } => {
                self.cost.index_descend_cost + rows_examined as f64 * self.cost.index_row_cost
            }
        };
        self.total_cost += cost_incurred;

        // The feedback loop: report the actual selectivity (free — the
        // engine just counted the qualifying rows).
        let n = self.catalog.table.row_count().max(1);
        let actual_selectivity = rows_returned as f64 / n as f64;
        self.catalog.estimator.observe(&ObservedQuery::new(rect, actual_selectivity));

        QueryResult {
            path,
            rows_returned,
            rows_examined,
            actual_selectivity,
            estimated_selectivity,
            cost_incurred,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use quicksel_core::{QuickSel, QuickSelConfig, RefinePolicy};
    use quicksel_data::Table;
    use quicksel_geometry::Domain;

    fn engine() -> Engine {
        let d = Domain::of_reals(&[("x", 0.0, 100.0), ("y", 0.0, 100.0)]);
        let mut t = Table::new(d.clone());
        // 90% of rows clustered in x ∈ [0, 10).
        for i in 0..9000 {
            t.push_row(&[(i % 100) as f64 / 10.0, (i % 97) as f64]);
        }
        for i in 0..1000 {
            t.push_row(&[10.0 + (i % 900) as f64 / 10.0, (i % 89) as f64]);
        }
        let est = QuickSel::new(d);
        Engine::new(Catalog::new(t, Box::new(est)).with_index(0))
    }

    #[test]
    fn scan_and_probe_agree_on_row_counts() {
        let mut e = engine();
        let p = Predicate::new().range(0, 20.0, 30.0).range(1, 0.0, 50.0);
        let r1 = e.execute(&p);
        // Whatever the path, returned rows must equal the true count.
        let rect = p.to_rect(e.catalog().table.domain());
        assert_eq!(r1.rows_returned, e.catalog().table.count(&rect));
        assert!((r1.actual_selectivity - e.catalog().table.selectivity(&rect)).abs() < 1e-12);
    }

    #[test]
    fn feedback_reaches_the_estimator() {
        let mut e = engine();
        let p = Predicate::new().range(0, 0.0, 5.0);
        let before = e.catalog().estimator.param_count();
        e.execute(&p);
        assert!(e.catalog().estimator.param_count() > before);
    }

    #[test]
    fn learning_reduces_execution_cost() {
        // Run the same mis-estimated workload twice: once fresh (uniform
        // prior mis-plans the clustered range as a cheap-looking index
        // probe that random-accesses 45% of the table), once after warmup.
        // The learned engine must incur lower modeled cost.
        let workload: Vec<Predicate> = (0..20)
            .map(|i| {
                let lo = (i % 5) as f64;
                Predicate::new().range(0, lo, lo + 5.0)
            })
            .collect();

        let mut cold = engine();
        for p in &workload {
            cold.execute(p);
        }
        let cold_cost = cold.total_cost;

        let mut warm = engine();
        for p in &workload {
            warm.execute(p); // warmup pass (estimator learns)
        }
        warm.total_cost = 0.0;
        for p in &workload {
            warm.execute(p); // measured pass
        }
        assert!(warm.total_cost < cold_cost, "warm {} vs cold {}", warm.total_cost, cold_cost);
    }

    #[test]
    fn estimates_improve_over_the_run() {
        let cfg = QuickSelConfig { refine_policy: RefinePolicy::EveryQuery, ..Default::default() };
        let d = Domain::of_reals(&[("x", 0.0, 100.0), ("y", 0.0, 100.0)]);
        let mut t = Table::new(d.clone());
        for i in 0..5000 {
            t.push_row(&[(i % 100) as f64 / 2.0, (i % 83) as f64]);
        }
        let est = QuickSel::with_config(d, cfg);
        let mut e = Engine::new(Catalog::new(t, Box::new(est)).with_index(0));
        let mut early_err = 0.0;
        let mut late_err = 0.0;
        for i in 0..40 {
            let lo = (i % 8) as f64 * 6.0;
            let p = Predicate::new().range(0, lo, lo + 6.0);
            let r = e.execute(&p);
            let err = (r.estimated_selectivity - r.actual_selectivity).abs();
            if i < 8 {
                early_err += err;
            } else if i >= 32 {
                late_err += err;
            }
        }
        assert!(late_err < early_err, "late {late_err} vs early {early_err}");
    }

    #[test]
    fn inserts_keep_engine_consistent() {
        let mut e = engine();
        let rows: Vec<Vec<f64>> = (0..500).map(|i| vec![50.0, (i % 100) as f64]).collect();
        e.catalog_mut().insert_rows(&rows);
        let p = Predicate::new().range(0, 49.5, 50.5);
        let r = e.execute(&p);
        assert!(r.rows_returned >= 500);
    }
}
