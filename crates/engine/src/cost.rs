//! The cost model used for access-path selection.
//!
//! Deliberately the classic System-R-style crossover: a sequential scan
//! touches every row at unit cost; an index probe pays a per-tuple
//! random-access penalty on the selected fraction plus a logarithmic
//! descent. The better the selectivity estimate, the more often the
//! cheaper path is chosen — which is precisely the paper's motivation
//! (§1: "the estimated selectivities allow the query optimizer to choose
//! the cheapest access path"). Estimates reach the cost comparison only
//! through the [`CardinalityProvider`](quicksel_service::CardinalityProvider)
//! seam; the cost model itself is estimator-agnostic.

/// Tunable cost constants.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Cost of reading one row sequentially.
    pub seq_row_cost: f64,
    /// Cost of fetching one row through the index (random access).
    pub index_row_cost: f64,
    /// Fixed cost of descending the index.
    pub index_descend_cost: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self { seq_row_cost: 1.0, index_row_cost: 10.0, index_descend_cost: 32.0 }
    }
}

impl CostModel {
    /// Cost of scanning all `rows`.
    pub fn seq_scan(&self, rows: usize) -> f64 {
        rows as f64 * self.seq_row_cost
    }

    /// Cost of an index probe returning `selectivity · rows` tuples.
    pub fn index_probe(&self, rows: usize, selectivity: f64) -> f64 {
        self.index_descend_cost + selectivity.clamp(0.0, 1.0) * rows as f64 * self.index_row_cost
    }

    /// The selectivity below which the index probe wins.
    pub fn crossover(&self, rows: usize) -> f64 {
        if rows == 0 {
            return 0.0;
        }
        ((self.seq_scan(rows) - self.index_descend_cost) / (rows as f64 * self.index_row_cost))
            .clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_cost_is_linear() {
        let c = CostModel::default();
        assert_eq!(c.seq_scan(1000), 1000.0);
        assert_eq!(c.seq_scan(0), 0.0);
    }

    #[test]
    fn index_wins_for_selective_predicates() {
        let c = CostModel::default();
        let rows = 10_000;
        assert!(c.index_probe(rows, 0.01) < c.seq_scan(rows));
        assert!(c.index_probe(rows, 0.5) > c.seq_scan(rows));
    }

    #[test]
    fn crossover_is_consistent() {
        let c = CostModel::default();
        let rows = 10_000;
        let x = c.crossover(rows);
        assert!((c.index_probe(rows, x) - c.seq_scan(rows)).abs() < 1e-6);
        assert!(x > 0.0 && x < 1.0);
    }
}
