//! Mini query engine demonstrating the paper's §6: integrating
//! query-driven selectivity estimation into a DBMS.
//!
//! The paper observes that most engines already have the three pieces a
//! query-driven estimator needs — a module that computes *actual*
//! selectivities during execution (Spark's `FilterExec`), a module that
//! consumes selectivity *estimates* during planning, and a catalog to
//! persist statistics. This crate wires those pieces around the in-memory
//! [`Table`](quicksel_data::Table) substrate:
//!
//! * [`Catalog`] — table data plus per-table sorted-column indexes
//!   (statistics live behind the provider, not in the catalog),
//! * [`CardinalityProvider`] — the **only** way the engine consumes and
//!   feeds estimates: per-table `estimate(table, &Predicate)`, the
//!   `observe(table, feedback)` learning loop, and the
//!   `estimate_join` hook. Production setups pass an
//!   [`EstimatorRegistry`](quicksel_service::EstimatorRegistry) (sharded,
//!   lock-free reads, many tables); tests and baselines can use a
//!   [`LearnerProvider`](quicksel_service::LearnerProvider),
//! * [`planner`] — cost-based access-path selection (sequential scan vs.
//!   index range probe) driven by provider estimates,
//! * [`executor`] — runs the chosen plan, counts the rows that actually
//!   satisfied the predicate, and **feeds the observation back** through
//!   the provider — closing the paper's learning loop.
//!
//! ```
//! use quicksel_engine::{Catalog, Engine};
//! use quicksel_core::QuickSel;
//! use quicksel_geometry::Predicate;
//!
//! let table = quicksel_data::datasets::gaussian_table(2, 0.4, 5_000, 3);
//! let estimator = QuickSel::new(table.domain().clone());
//! let mut engine = Engine::with_learner(Catalog::new(table).with_index(0), Box::new(estimator));
//!
//! let pred = Predicate::new().range(0, -0.5, 0.5);
//! let result = engine.execute(&pred);
//! assert!(result.rows_returned > 0);
//! // The provider has now observed the query's true selectivity.
//! ```

pub mod catalog;
pub mod cost;
pub mod executor;
pub mod join;
pub mod planner;

pub use catalog::Catalog;
pub use cost::CostModel;
pub use executor::{Engine, QueryResult};
pub use join::{
    estimate_join_cardinalities, estimate_join_cardinality, exact_equijoin_cardinality,
};
pub use planner::{plan, plan_with_estimate, AccessPath};
pub use quicksel_service::{CardinalityProvider, TableId};
