//! Mini query engine demonstrating the paper's §6: integrating
//! query-driven selectivity estimation into a DBMS.
//!
//! The paper observes that most engines already have the three pieces a
//! query-driven estimator needs — a module that computes *actual*
//! selectivities during execution (Spark's `FilterExec`), a module that
//! consumes selectivity *estimates* during planning, and a catalog to
//! persist statistics. This crate wires those pieces around the in-memory
//! [`Table`](quicksel_data::Table) substrate:
//!
//! * [`Catalog`] — tables plus per-table sorted-column indexes and the
//!   selectivity estimator (any [`Learn`](quicksel_data::Learn)
//!   implementation; the planner reads it through the
//!   [`Estimate`](quicksel_data::Estimate) supertrait),
//! * [`planner`] — cost-based access-path selection (sequential scan vs.
//!   index range probe) driven by the estimator,
//! * [`executor`] — runs the chosen plan, counts the rows that actually
//!   satisfied the predicate, and **feeds the observation back** into the
//!   estimator — closing the paper's learning loop.
//!
//! ```
//! use quicksel_engine::{Catalog, Engine};
//! use quicksel_core::QuickSel;
//! use quicksel_geometry::Predicate;
//!
//! let table = quicksel_data::datasets::gaussian_table(2, 0.4, 5_000, 3);
//! let estimator = QuickSel::new(table.domain().clone());
//! let mut engine = Engine::new(Catalog::new(table, Box::new(estimator)).with_index(0));
//!
//! let pred = Predicate::new().range(0, -0.5, 0.5);
//! let result = engine.execute(&pred);
//! assert!(result.rows_returned > 0);
//! // The estimator has now observed the query's true selectivity.
//! ```

pub mod catalog;
pub mod cost;
pub mod executor;
pub mod join;
pub mod planner;

pub use catalog::Catalog;
pub use cost::CostModel;
pub use executor::{Engine, QueryResult};
pub use join::{estimate_join_cardinality, exact_equijoin_cardinality};
pub use planner::{plan, AccessPath};
