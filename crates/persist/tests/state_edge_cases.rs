//! Serialization edge cases for the estimator state format: every
//! corruption mode returns a **typed** [`PersistError`] (never a
//! panic), hostile states are rejected before they can violate core
//! invariants, and valid states — including the degenerate ones —
//! round-trip to bit-identical estimates.

use proptest::prelude::*;
use quicksel_core::{QuickSel, RefinePolicy, StateError};
use quicksel_data::{Estimate, Learn, ObservedQuery};
use quicksel_geometry::{Domain, Interval, Rect};
use quicksel_persist::{decode_state, encode_state, PersistError, PersistLearner};

fn domain() -> Domain {
    Domain::of_reals(&[("x", 0.0, 10.0), ("y", 0.0, 10.0)])
}

fn learner(seed: u64) -> QuickSel {
    QuickSel::builder(domain())
        .refine_policy(RefinePolicy::Manual)
        .fixed_subpops(24)
        .seed(seed)
        .build()
}

fn obs(k: usize) -> ObservedQuery {
    let lo_x = (k * 13 % 70) as f64 * 0.1;
    let lo_y = (k * 29 % 60) as f64 * 0.1;
    let len = 0.8 + (k % 5) as f64 * 0.6;
    let rect = Rect::from_bounds(&[(lo_x, lo_x + len), (lo_y, lo_y + len)]);
    ObservedQuery::new(rect, (k % 10) as f64 * 0.1)
}

fn probes() -> Vec<Rect> {
    (0..30)
        .map(|k| {
            let lo = (k * 7 % 80) as f64 * 0.1;
            Rect::from_bounds(&[(lo, (lo + 1.5).min(10.0)), (0.0, 0.5 + (k % 9) as f64)])
        })
        .collect()
}

/// A trained estimator (cold train + warm refine), the richest state:
/// model, trainer caches, RNG mid-stream, point pool.
fn trained(seed: u64, batches: usize) -> QuickSel {
    let mut est = learner(seed);
    for b in 0..batches {
        est.observe_batch(&(0..4).map(|j| obs(b * 4 + j)).collect::<Vec<_>>());
        est.refine().expect("train");
    }
    est
}

#[test]
fn empty_estimator_round_trips_exactly() {
    // No feedback, no model, no trainer: the smallest valid state.
    let est = learner(1);
    let bytes = est.save_state().expect("save");
    let restored = QuickSel::load_state(&bytes).expect("load");
    for p in probes() {
        assert_eq!(est.estimate(&p), restored.estimate(&p));
    }
    assert_eq!(restored.observed_count(), 0);
    // And the restored copy trains on identically from there.
    let mut a = est;
    let mut b = restored;
    a.observe_batch(&[obs(0), obs(1)]);
    b.observe_batch(&[obs(0), obs(1)]);
    a.refine().expect("train a");
    b.refine().expect("train b");
    for p in probes() {
        assert_eq!(a.estimate(&p), b.estimate(&p));
    }
}

#[test]
fn trained_estimator_round_trips_exactly() {
    let est = trained(5, 6);
    let bytes = est.save_state().expect("save");
    let restored = QuickSel::load_state(&bytes).expect("load");
    for p in probes() {
        assert_eq!(est.estimate(&p), restored.estimate(&p));
    }
    assert_eq!(est.observed_count(), restored.observed_count());
}

#[test]
fn bad_magic_is_a_typed_error() {
    let mut bytes = trained(2, 2).save_state().expect("save");
    bytes[0..4].copy_from_slice(b"NOPE");
    match QuickSel::load_state(&bytes).err() {
        Some(PersistError::BadMagic { found, .. }) => assert_eq!(&found, b"NOPE"),
        other => panic!("expected BadMagic, got {other:?}"),
    }
}

#[test]
fn future_format_version_is_rejected() {
    let mut bytes = trained(2, 2).save_state().expect("save");
    // The u16 version sits right after the 4-byte magic.
    bytes[4] = 0xFF;
    bytes[5] = 0x7F;
    match QuickSel::load_state(&bytes).err() {
        Some(PersistError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, 0x7FFF);
            assert!(supported < found);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn corrupt_payload_fails_its_section_checksum() {
    let est = trained(3, 4);
    let clean = est.save_state().expect("save");
    // Flip one byte near the end (deep in section payload, past the
    // header) and demand a checksum rejection — not garbage data.
    let mut bytes = clean.clone();
    let k = bytes.len() - 9;
    bytes[k] ^= 0x40;
    match QuickSel::load_state(&bytes).err() {
        Some(PersistError::CorruptChecksum { .. }) => {}
        other => panic!("expected CorruptChecksum, got {other:?}"),
    }
}

#[test]
fn every_truncation_point_is_a_typed_error_never_a_panic() {
    let bytes = trained(4, 3).save_state().expect("save");
    for cut in 0..bytes.len() {
        match QuickSel::load_state(&bytes[..cut]).err() {
            None => panic!("a strict prefix of {cut} bytes decoded successfully"),
            Some(
                PersistError::Truncated { .. }
                | PersistError::CorruptChecksum { .. }
                | PersistError::BadMagic { .. }
                | PersistError::UnsupportedVersion { .. }
                | PersistError::MissingSection { .. }
                | PersistError::Invalid { .. },
            ) => {}
            Some(other) => panic!("unexpected error class at cut {cut}: {other:?}"),
        }
    }
}

#[test]
fn hostile_states_are_rejected_before_reaching_the_core() {
    let est = trained(6, 4);
    let good = est.export_state();

    // NaN weight: decodes (f64 bits round-trip NaN exactly) but must be
    // rejected by state validation, not handed to the model.
    let mut nan_weight = good.clone();
    let (rects, mut weights) = nan_weight.model.clone().expect("trained");
    weights[0] = f64::NAN;
    nan_weight.model = Some((rects, weights));
    assert!(matches!(QuickSel::try_from_state(nan_weight), Err(StateError::Invalid { .. })));

    // Zero-volume subpopulation in the trainer: its |G_z| divisor is 0.
    let mut flat_subpop = good.clone();
    let trainer = flat_subpop.trainer.as_mut().expect("trained");
    let lo = trainer.subpops[0].sides()[0].lo;
    let mut sides = trainer.subpops[0].sides().to_vec();
    sides[0] = Interval::new(lo, lo);
    trainer.subpops[0] = Rect::new(sides);
    assert!(matches!(QuickSel::try_from_state(flat_subpop), Err(StateError::Invalid { .. })));

    // Trainer claiming more trained queries than the feedback log holds.
    let mut short_log = good.clone();
    short_log.queries.truncate(1);
    short_log.pending_since_refine = 0;
    assert!(matches!(QuickSel::try_from_state(short_log), Err(StateError::Invalid { .. })));

    // The unmodified state still loads — the rejections above are about
    // the mutations, not the fixture.
    assert!(QuickSel::try_from_state(good).is_ok());
}

#[test]
fn decode_encode_decode_is_a_fixed_point() {
    let bytes = trained(8, 5).save_state().expect("save");
    let state = decode_state(&bytes).expect("decode");
    let re = encode_state(&state);
    assert_eq!(bytes, re, "encoding is not canonical");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random training histories round-trip to bit-identical estimates,
    /// and keep producing identical estimates after further training.
    #[test]
    fn prop_state_round_trip_is_exact(
        seed in 0..1000u64,
        batches in 0..8usize,
        extra in 1..4usize,
    ) {
        let est = trained(seed, batches);
        let restored = QuickSel::load_state(&est.save_state().expect("save")).expect("load");
        for p in probes() {
            prop_assert_eq!(est.estimate(&p), restored.estimate(&p));
        }
        // Diverge-free continuation: same feedback → same trajectory.
        let mut a = est;
        let mut b = restored;
        for e in 0..extra {
            let batch: Vec<ObservedQuery> =
                (0..3).map(|j| obs(1000 + e * 3 + j)).collect();
            a.observe_batch(&batch);
            b.observe_batch(&batch);
            let ra = a.refine();
            let rb = b.refine();
            prop_assert_eq!(ra.is_ok(), rb.is_ok());
        }
        for p in probes() {
            prop_assert_eq!(a.estimate(&p), b.estimate(&p));
        }
    }
}
