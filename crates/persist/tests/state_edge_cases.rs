//! Serialization edge cases for the estimator state format: every
//! corruption mode returns a **typed** [`PersistError`] (never a
//! panic), hostile states are rejected before they can violate core
//! invariants, and valid states — including the degenerate ones —
//! round-trip to bit-identical estimates.

use proptest::prelude::*;
use quicksel_core::{QuickSel, QuickSelState, RefinePolicy, StateError, TrainingMethod};
use quicksel_data::{Estimate, Learn, ObservedQuery, RefineOutcome};
use quicksel_geometry::{Domain, Interval, Rect};
use quicksel_persist::format::{write_container, PutBytes};
use quicksel_persist::{
    decode_state, encode_domain, encode_rect, encode_state, PersistError, PersistLearner,
    STATE_MAGIC,
};

fn domain() -> Domain {
    Domain::of_reals(&[("x", 0.0, 10.0), ("y", 0.0, 10.0)])
}

fn learner(seed: u64) -> QuickSel {
    QuickSel::builder(domain())
        .refine_policy(RefinePolicy::Manual)
        .fixed_subpops(24)
        .seed(seed)
        .build()
}

fn obs(k: usize) -> ObservedQuery {
    let lo_x = (k * 13 % 70) as f64 * 0.1;
    let lo_y = (k * 29 % 60) as f64 * 0.1;
    let len = 0.8 + (k % 5) as f64 * 0.6;
    let rect = Rect::from_bounds(&[(lo_x, lo_x + len), (lo_y, lo_y + len)]);
    ObservedQuery::new(rect, (k % 10) as f64 * 0.1)
}

fn probes() -> Vec<Rect> {
    (0..30)
        .map(|k| {
            let lo = (k * 7 % 80) as f64 * 0.1;
            Rect::from_bounds(&[(lo, (lo + 1.5).min(10.0)), (0.0, 0.5 + (k % 9) as f64)])
        })
        .collect()
}

/// A trained estimator (cold train + warm refine), the richest state:
/// model, trainer caches, RNG mid-stream, point pool.
fn trained(seed: u64, batches: usize) -> QuickSel {
    let mut est = learner(seed);
    for b in 0..batches {
        est.observe_batch(&(0..4).map(|j| obs(b * 4 + j)).collect::<Vec<_>>());
        est.refine().expect("train");
    }
    est
}

#[test]
fn empty_estimator_round_trips_exactly() {
    // No feedback, no model, no trainer: the smallest valid state.
    let est = learner(1);
    let bytes = est.save_state().expect("save");
    let restored = QuickSel::load_state(&bytes).expect("load");
    for p in probes() {
        assert_eq!(est.estimate(&p), restored.estimate(&p));
    }
    assert_eq!(restored.observed_count(), 0);
    // And the restored copy trains on identically from there.
    let mut a = est;
    let mut b = restored;
    a.observe_batch(&[obs(0), obs(1)]);
    b.observe_batch(&[obs(0), obs(1)]);
    a.refine().expect("train a");
    b.refine().expect("train b");
    for p in probes() {
        assert_eq!(a.estimate(&p), b.estimate(&p));
    }
}

#[test]
fn trained_estimator_round_trips_exactly() {
    let est = trained(5, 6);
    let bytes = est.save_state().expect("save");
    let restored = QuickSel::load_state(&bytes).expect("load");
    for p in probes() {
        assert_eq!(est.estimate(&p), restored.estimate(&p));
    }
    assert_eq!(est.observed_count(), restored.observed_count());
}

#[test]
fn bad_magic_is_a_typed_error() {
    let mut bytes = trained(2, 2).save_state().expect("save");
    bytes[0..4].copy_from_slice(b"NOPE");
    match QuickSel::load_state(&bytes).err() {
        Some(PersistError::BadMagic { found, .. }) => assert_eq!(&found, b"NOPE"),
        other => panic!("expected BadMagic, got {other:?}"),
    }
}

#[test]
fn future_format_version_is_rejected() {
    let mut bytes = trained(2, 2).save_state().expect("save");
    // The u16 version sits right after the 4-byte magic.
    bytes[4] = 0xFF;
    bytes[5] = 0x7F;
    match QuickSel::load_state(&bytes).err() {
        Some(PersistError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, 0x7FFF);
            assert!(supported < found);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn corrupt_payload_fails_its_section_checksum() {
    let est = trained(3, 4);
    let clean = est.save_state().expect("save");
    // Flip one byte near the end (deep in section payload, past the
    // header) and demand a checksum rejection — not garbage data.
    let mut bytes = clean.clone();
    let k = bytes.len() - 9;
    bytes[k] ^= 0x40;
    match QuickSel::load_state(&bytes).err() {
        Some(PersistError::CorruptChecksum { .. }) => {}
        other => panic!("expected CorruptChecksum, got {other:?}"),
    }
}

#[test]
fn every_truncation_point_is_a_typed_error_never_a_panic() {
    let bytes = trained(4, 3).save_state().expect("save");
    for cut in 0..bytes.len() {
        match QuickSel::load_state(&bytes[..cut]).err() {
            None => panic!("a strict prefix of {cut} bytes decoded successfully"),
            Some(
                PersistError::Truncated { .. }
                | PersistError::CorruptChecksum { .. }
                | PersistError::BadMagic { .. }
                | PersistError::UnsupportedVersion { .. }
                | PersistError::MissingSection { .. }
                | PersistError::Invalid { .. },
            ) => {}
            Some(other) => panic!("unexpected error class at cut {cut}: {other:?}"),
        }
    }
}

#[test]
fn hostile_states_are_rejected_before_reaching_the_core() {
    let est = trained(6, 4);
    let good = est.export_state();

    // NaN weight: decodes (f64 bits round-trip NaN exactly) but must be
    // rejected by state validation, not handed to the model.
    let mut nan_weight = good.clone();
    let (rects, mut weights) = nan_weight.model.clone().expect("trained");
    weights[0] = f64::NAN;
    nan_weight.model = Some((rects, weights));
    assert!(matches!(QuickSel::try_from_state(nan_weight), Err(StateError::Invalid { .. })));

    // Zero-volume subpopulation in the trainer: its |G_z| divisor is 0.
    let mut flat_subpop = good.clone();
    let trainer = flat_subpop.trainer.as_mut().expect("trained");
    let lo = trainer.subpops[0].sides()[0].lo;
    let mut sides = trainer.subpops[0].sides().to_vec();
    sides[0] = Interval::new(lo, lo);
    trainer.subpops[0] = Rect::new(sides);
    assert!(matches!(QuickSel::try_from_state(flat_subpop), Err(StateError::Invalid { .. })));

    // Trainer claiming more trained queries than the feedback log holds.
    let mut short_log = good.clone();
    short_log.queries.truncate(1);
    short_log.pending_since_refine = 0;
    assert!(matches!(QuickSel::try_from_state(short_log), Err(StateError::Invalid { .. })));

    // The unmodified state still loads — the rejections above are about
    // the mutations, not the fixture.
    assert!(QuickSel::try_from_state(good).is_ok());
}

/// Serializes a capture in the exact **v1** container layout: config
/// stops after `warm_refine_limit`, MISC stops after the training
/// version, the trainer carries no pending signs, and there is no
/// point-count/compaction/drift bookkeeping anywhere. This pins the
/// pre-bounded-history format byte for byte, so checkpoints written by
/// older builds keep decoding.
fn encode_state_v1(state: &QuickSelState) -> Vec<u8> {
    fn put_f64s(out: &mut Vec<u8>, xs: &[f64]) {
        out.put_usize(xs.len());
        for &v in xs {
            out.put_f64(v);
        }
    }
    fn put_matrix(out: &mut Vec<u8>, m: &quicksel_linalg::DMatrix) {
        out.put_usize(m.rows());
        out.put_usize(m.cols());
        for &v in m.as_slice() {
            out.put_f64(v);
        }
    }

    let mut domain = Vec::new();
    encode_domain(&mut domain, &state.domain);

    let c = &state.config;
    let mut config = Vec::new();
    config.put_f64(c.lambda);
    config.put_f64(c.ridge_rel);
    config.put_usize(c.points_per_query);
    config.put_usize(c.subpops_per_query);
    config.put_usize(c.max_subpops);
    config.put_usize(c.size_neighbors);
    config.put_f64(c.overlap_factor);
    match c.refine_policy {
        RefinePolicy::EveryQuery => config.put_u32(0),
        RefinePolicy::EveryK(k) => {
            config.put_u32(1);
            config.put_usize(k);
        }
        RefinePolicy::Manual => config.put_u32(2),
    }
    match c.training {
        TrainingMethod::AnalyticPenalty => config.put_u32(0),
        TrainingMethod::StandardQp => config.put_u32(1),
    }
    config.put_u64(c.seed);
    config.put_usize(c.warm_refine_limit);

    let mut queries = Vec::new();
    queries.put_usize(state.queries.len());
    for q in &state.queries {
        q.encode_into(&mut queries);
    }

    let mut points = Vec::new();
    points.put_usize(state.point_pool.len());
    for p in &state.point_pool {
        put_f64s(&mut points, p);
    }

    let mut model = Vec::new();
    match &state.model {
        None => model.put_u32(0),
        Some((rects, weights)) => {
            model.put_u32(1);
            model.put_usize(rects.len());
            for rect in rects {
                encode_rect(&mut model, rect);
            }
            put_f64s(&mut model, weights);
        }
    }

    let mut misc = Vec::new();
    for w in state.rng_state {
        misc.put_u64(w);
    }
    misc.put_usize(state.pending_since_refine);
    misc.put_u64(state.version);

    let trainer = state.trainer.as_ref().map(|t| {
        let mut buf = Vec::new();
        buf.put_usize(t.subpops.len());
        for rect in &t.subpops {
            encode_rect(&mut buf, rect);
        }
        put_matrix(&mut buf, &t.q);
        put_matrix(&mut buf, &t.a);
        put_f64s(&mut buf, &t.s);
        put_matrix(&mut buf, &t.gram);
        put_f64s(&mut buf, &t.ats);
        put_matrix(&mut buf, &t.factor_lower);
        buf.put_f64(t.solver_scale);
        put_f64s(&mut buf, &t.pending_rows);
        put_f64s(&mut buf, &t.pending_solved);
        buf.put_usize(t.pending_rank);
        buf.put_f64(t.lambda);
        buf.put_f64(t.ridge_abs);
        buf.put_usize(t.warm_refines);
        buf
    });

    let mut sections: Vec<([u8; 4], &[u8])> = vec![
        (*b"DOMN", &domain),
        (*b"CONF", &config),
        (*b"QRYS", &queries),
        (*b"PNTS", &points),
        (*b"MODL", &model),
        (*b"MISC", &misc),
    ];
    if let Some(t) = &trainer {
        sections.push((*b"TRNR", t));
    }
    write_container(STATE_MAGIC, 1, &sections)
}

#[test]
fn v1_checkpoints_still_decode_and_recover() {
    // A trained estimator whose state is expressible in v1: unbounded
    // history (no compaction), no eviction downdates pending.
    let est = trained(11, 5);
    let state = est.export_state();
    assert_eq!(state.compacted_len, 0, "fixture must be v1-expressible");
    assert!(state.trainer.as_ref().unwrap().pending_signs.iter().all(|&s| s == 1.0));

    let v1_bytes = encode_state_v1(&state);
    let decoded = decode_state(&v1_bytes).expect("v1 container must decode");

    // Migration fills the new fields with v1 semantics.
    assert_eq!(decoded.config.max_history, usize::MAX);
    assert_eq!(decoded.point_counts.len(), decoded.queries.len());
    let total: u64 = decoded.point_counts.iter().map(|&c| u64::from(c)).sum();
    assert_eq!(total, decoded.point_pool.len() as u64);
    assert_eq!(decoded.compacted_len, 0);
    assert_eq!(decoded.evicted_total, 0);
    assert!(!decoded.force_cold);

    // And the migrated state restores to a serving estimator with
    // bit-identical estimates…
    let mut restored = QuickSel::try_from_state(decoded).expect("migrated state must restore");
    for p in probes() {
        assert_eq!(est.estimate(&p), restored.estimate(&p));
    }
    assert_eq!(restored.observed_count(), est.observed_count());

    // …that resumes **warm**: the cached trainer survived migration, so
    // the first post-restore refine folds new feedback incrementally.
    restored.observe_batch(&(0..3).map(|j| obs(900 + j)).collect::<Vec<_>>());
    match restored.refine().expect("post-migration refine") {
        RefineOutcome::Retrained { incremental, .. } => assert!(incremental),
        other => panic!("expected a retrain, got {other:?}"),
    }
    for p in probes() {
        let e = restored.estimate(&p);
        assert!((0.0..=1.0).contains(&e));
    }
}

#[test]
fn v1_point_pool_mismatch_is_rejected() {
    // A v1 capture whose pool length contradicts the points-per-query
    // reconstruction rule must fail migration with a typed error.
    let est = trained(12, 3);
    let mut state = est.export_state();
    state.point_pool.pop();
    let v1_bytes = encode_state_v1(&state);
    assert!(matches!(decode_state(&v1_bytes), Err(PersistError::Invalid { .. })));
}

#[test]
fn bounded_history_state_round_trips_exactly() {
    // A capture that exercises every v2 field: compacted prefix,
    // eviction counters, drift state, point counts.
    let mut est = QuickSel::builder(domain())
        .refine_policy(RefinePolicy::Manual)
        .fixed_subpops(24)
        .seed(77)
        .max_history(8)
        .build();
    for b in 0..10 {
        est.observe_batch(&(0..4).map(|j| obs(b * 4 + j)).collect::<Vec<_>>());
        est.refine().expect("train");
    }
    let state = est.export_state();
    assert!(state.compacted_len > 0, "fixture must have compacted history");
    assert!(state.evicted_total > 0);

    let bytes = est.save_state().expect("save");
    let restored = QuickSel::load_state(&bytes).expect("load");
    for p in probes() {
        assert_eq!(est.estimate(&p), restored.estimate(&p));
    }

    // Continuation equivalence: same feedback → same trajectory, through
    // further evictions.
    let mut a = est;
    let mut b = restored;
    for e in 0..4 {
        let batch: Vec<ObservedQuery> = (0..3).map(|j| obs(500 + e * 3 + j)).collect();
        a.observe_batch(&batch);
        b.observe_batch(&batch);
        assert_eq!(a.refine().is_ok(), b.refine().is_ok());
    }
    for p in probes() {
        assert_eq!(a.estimate(&p), b.estimate(&p));
    }
}

#[test]
fn decode_encode_decode_is_a_fixed_point() {
    let bytes = trained(8, 5).save_state().expect("save");
    let state = decode_state(&bytes).expect("decode");
    let re = encode_state(&state);
    assert_eq!(bytes, re, "encoding is not canonical");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random training histories round-trip to bit-identical estimates,
    /// and keep producing identical estimates after further training.
    #[test]
    fn prop_state_round_trip_is_exact(
        seed in 0..1000u64,
        batches in 0..8usize,
        extra in 1..4usize,
    ) {
        let est = trained(seed, batches);
        let restored = QuickSel::load_state(&est.save_state().expect("save")).expect("load");
        for p in probes() {
            prop_assert_eq!(est.estimate(&p), restored.estimate(&p));
        }
        // Diverge-free continuation: same feedback → same trajectory.
        let mut a = est;
        let mut b = restored;
        for e in 0..extra {
            let batch: Vec<ObservedQuery> =
                (0..3).map(|j| obs(1000 + e * 3 + j)).collect();
            a.observe_batch(&batch);
            b.observe_batch(&batch);
            let ra = a.refine();
            let rb = b.refine();
            prop_assert_eq!(ra.is_ok(), rb.is_ok());
        }
        for p in probes() {
            prop_assert_eq!(a.estimate(&p), b.estimate(&p));
        }
    }
}
