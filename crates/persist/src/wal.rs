//! Per-shard write-ahead log of observed feedback between checkpoints.
//!
//! Layout: a shard directory holds segments named
//! `wal-<first_seq:020>.qsl`. Each segment starts with a fixed header
//! (magic, version, the first sequence number it may contain, header
//! CRC) followed by CRC-framed records:
//!
//! ```text
//! segment: QSWL version:u16 first_seq:u64 crc:u32 │ record*
//! record:  len:u32 crc:u32 payload[len]
//! payload: first_seq:u64 count:u32 (ObservedQuery wire encoding)×count
//! ```
//!
//! One record per ingested **batch** — replay preserves the original
//! batch boundaries, which matters because the learner's refine cadence
//! (and hence its exact numeric state) depends on them. Sequence numbers
//! are 1-based and label individual rows; a record covers
//! `[first_seq, first_seq + count)`.
//!
//! **Torn-tail tolerance.** A crash can truncate the final record
//! mid-write. The reader stops at the first short read or CRC mismatch
//! and reports how many bytes it ignored — that is recovery data loss of
//! rows that were never acknowledged as ingested under a checkpoint, not
//! corruption of ones that were. Everything before the torn tail is
//! CRC-verified and replayable.

use crate::format::{crc32, PutBytes, Reader};
use crate::PersistError;
use quicksel_data::ObservedQuery;
use quicksel_fault::{FaultPlan, IoFault, IoOp};
use std::fs::{self, File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Magic of a WAL segment.
pub const WAL_MAGIC: [u8; 4] = *b"QSWL";
/// Current WAL format version.
pub const WAL_VERSION: u16 = 1;

/// Fixed segment header size: magic + version + first_seq + crc.
const SEGMENT_HEADER: usize = 4 + 2 + 8 + 4;

/// Segment file extension.
const SEGMENT_EXT: &str = "qsl";

/// The file name of the segment whose first row is `first_seq`.
pub fn segment_name(first_seq: u64) -> String {
    format!("wal-{first_seq:020}.{SEGMENT_EXT}")
}

/// Parses `first_seq` back out of a segment file name.
pub(crate) fn parse_segment_name(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("wal-")?.strip_suffix(&format!(".{SEGMENT_EXT}"))?;
    rest.parse().ok()
}

/// Lists a directory's WAL segments as `(first_seq, path)`, ascending.
pub fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, PersistError> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(seq) = entry.file_name().to_str().and_then(parse_segment_name) {
            out.push((seq, entry.path()));
        }
    }
    out.sort_unstable_by_key(|&(seq, _)| seq);
    Ok(out)
}

/// One replayable WAL record: a feedback batch and the sequence number
/// of its first row.
#[derive(Debug, Clone)]
pub struct WalRecord {
    /// Sequence number of the first row in this batch (rows are
    /// numbered consecutively from it).
    pub first_seq: u64,
    /// The batch, in its original ingest order.
    pub queries: Vec<ObservedQuery>,
}

/// The result of reading one segment.
#[derive(Debug)]
pub struct SegmentRead {
    /// The segment's declared first sequence number.
    pub first_seq: u64,
    /// Fully CRC-verified records, in write order.
    pub records: Vec<WalRecord>,
    /// Bytes ignored at the tail (torn final record); 0 on a clean
    /// segment.
    pub truncated_bytes: u64,
}

/// Appends feedback batches to the current segment, rotating to a new
/// file once the configured size is exceeded. Writes are flushed (but
/// not fsynced) per batch; the caller owning the learner lock serializes
/// all access.
pub struct WalWriter {
    dir: PathBuf,
    file: File,
    segment_bytes: u64,
    written: u64,
    next_seq: u64,
    sync_each_batch: bool,
    bytes_logged: u64,
    /// The fault-injection seam; disabled by default (one branch per
    /// operation, nothing else).
    fault: FaultPlan,
    /// Set when the active segment holds a torn tail that could not be
    /// rolled back (a simulated or real crash-mid-write). Appending past
    /// a tear would hide the new record from the reader, so appends are
    /// refused until [`rotate`](Self::rotate) starts a clean segment.
    dirty: bool,
}

impl WalWriter {
    /// Opens a **fresh** segment in `dir` starting at `next_seq`. Always
    /// starts a new file rather than appending to an existing one — after
    /// a crash the previous segment may end in a torn record, and
    /// appending past a tear would hide valid records behind it from the
    /// reader.
    pub fn open(
        dir: &Path,
        next_seq: u64,
        segment_bytes: u64,
        sync_each_batch: bool,
    ) -> Result<Self, PersistError> {
        Self::open_with_faults(dir, next_seq, segment_bytes, sync_each_batch, FaultPlan::disabled())
    }

    /// [`open`](Self::open) with a fault-injection plan threaded through
    /// every subsequent IO operation (segment opens, appends, rotations).
    pub fn open_with_faults(
        dir: &Path,
        next_seq: u64,
        segment_bytes: u64,
        sync_each_batch: bool,
        fault: FaultPlan,
    ) -> Result<Self, PersistError> {
        fs::create_dir_all(dir)?;
        let file = Self::start_segment(dir, next_seq, &fault)?;
        Ok(Self {
            dir: dir.to_path_buf(),
            file,
            segment_bytes: segment_bytes.max(SEGMENT_HEADER as u64 + 1),
            written: SEGMENT_HEADER as u64,
            next_seq,
            sync_each_batch,
            bytes_logged: 0,
            fault,
            dirty: false,
        })
    }

    fn start_segment(dir: &Path, first_seq: u64, fault: &FaultPlan) -> Result<File, PersistError> {
        let mut header = Vec::with_capacity(SEGMENT_HEADER);
        header.put_bytes(&WAL_MAGIC);
        header.put_u16(WAL_VERSION);
        header.put_u64(first_seq);
        let crc = crc32(&header);
        header.put_u32(crc);
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(dir.join(segment_name(first_seq)))?;
        match fault.io(IoOp::WalOpen, header.len()) {
            None => {
                file.write_all(&header)?;
                file.flush()?;
            }
            Some(IoFault::Short { keep } | IoFault::Torn { keep }) => {
                // A torn header: the segment is unreadable, which recovery
                // treats as "never got past creation".
                let _ = file.write_all(&header[..keep.min(header.len())]);
                let _ = file.flush();
                return Err(FaultPlan::io_error(IoOp::WalOpen).into());
            }
            Some(IoFault::FlushError) => {
                let _ = file.write_all(&header);
                return Err(FaultPlan::io_error(IoOp::WalOpen).into());
            }
            Some(_) => return Err(FaultPlan::io_error(IoOp::WalOpen).into()),
        }
        Ok(file)
    }

    /// The sequence number the next appended row will receive (1-based).
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Total record bytes appended over this writer's lifetime.
    pub fn bytes_logged(&self) -> u64 {
        self.bytes_logged
    }

    /// Logs one feedback batch as a single record, assigning its rows
    /// the next `batch.len()` sequence numbers. Returns the bytes
    /// written. Empty batches write nothing.
    ///
    /// **All-or-nothing**: on any failure — a real IO error or an
    /// injected one — the segment is rolled back to its pre-append
    /// length, so a refused batch leaves no bytes behind to replay. The
    /// one exception is a (simulated) crash mid-write
    /// ([`IoFault::Torn`]) or a failed rollback: the tear stays on disk
    /// for the reader's torn-tail tolerance, and the writer refuses
    /// further appends until [`rotate`](Self::rotate) succeeds.
    pub fn append_batch(&mut self, batch: &[ObservedQuery]) -> Result<u64, PersistError> {
        if batch.is_empty() {
            return Ok(0);
        }
        if self.dirty {
            return Err(PersistError::Io(std::io::Error::other(
                "wal segment holds a torn tail; rotation required before appending",
            )));
        }
        let mut payload = Vec::new();
        payload.put_u64(self.next_seq);
        payload.put_u32(batch.len() as u32);
        for q in batch {
            q.encode_into(&mut payload);
        }
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.put_u32(payload.len() as u32);
        frame.put_u32(crc32(&payload));
        frame.put_bytes(&payload);
        match self.fault.io(IoOp::WalAppend, frame.len()) {
            None => {
                if let Err(e) = self.write_frame(&frame) {
                    self.rollback();
                    return Err(e.into());
                }
            }
            Some(IoFault::Short { keep }) => {
                let _ = self.file.write_all(&frame[..keep.min(frame.len())]);
                self.rollback();
                return Err(FaultPlan::io_error(IoOp::WalAppend).into());
            }
            Some(IoFault::Torn { keep }) => {
                // Simulated crash: the partial frame stays on disk.
                let _ = self.file.write_all(&frame[..keep.min(frame.len())]);
                let _ = self.file.flush();
                self.dirty = true;
                return Err(FaultPlan::io_error(IoOp::WalAppend).into());
            }
            Some(IoFault::FlushError) => {
                let _ = self.file.write_all(&frame);
                self.rollback();
                return Err(FaultPlan::io_error(IoOp::WalAppend).into());
            }
            Some(_) => return Err(FaultPlan::io_error(IoOp::WalAppend).into()),
        }
        self.next_seq += batch.len() as u64;
        self.written += frame.len() as u64;
        self.bytes_logged += frame.len() as u64;
        if self.written >= self.segment_bytes {
            self.rotate()?;
        }
        Ok(frame.len() as u64)
    }

    fn write_frame(&mut self, frame: &[u8]) -> std::io::Result<()> {
        self.file.write_all(frame)?;
        self.file.flush()?;
        if self.sync_each_batch {
            self.file.sync_data()?;
        }
        Ok(())
    }

    /// Truncates the segment back to its last known-good length after a
    /// failed append; a failed rollback marks the segment dirty so the
    /// tear is never appended past.
    fn rollback(&mut self) {
        let ok = self.file.set_len(self.written).is_ok()
            && self.file.seek(SeekFrom::Start(self.written)).is_ok();
        if !ok {
            self.dirty = true;
        }
    }

    /// Seals the current segment and starts a new one at the current
    /// sequence position. Also the recovery path out of a torn segment:
    /// a successful rotation leaves the tear behind in the sealed file
    /// (where the reader's tolerance handles it) and resumes clean.
    pub fn rotate(&mut self) -> Result<(), PersistError> {
        if !self.dirty {
            self.file.flush()?;
        }
        self.file = Self::start_segment(&self.dir, self.next_seq, &self.fault)?;
        self.written = SEGMENT_HEADER as u64;
        self.dirty = false;
        Ok(())
    }
}

/// Reads one segment, verifying the header strictly and the records
/// leniently: the first torn or corrupt record ends the read (its bytes
/// are counted, not replayed), because nothing after a tear can be
/// trusted to be framed correctly.
pub fn read_segment(path: &Path) -> Result<SegmentRead, PersistError> {
    read_segment_with(path, &FaultPlan::disabled())
}

/// [`read_segment`] with a fault seam over the raw bytes: injected
/// corruption flips a bit *after* the read, so the CRC machinery (not
/// the injector) decides what survives.
pub fn read_segment_with(path: &Path, fault: &FaultPlan) -> Result<SegmentRead, PersistError> {
    let mut bytes = fs::read(path)?;
    match fault.io(IoOp::WalRead, bytes.len()) {
        None => {}
        Some(IoFault::Corrupt { offset }) if !bytes.is_empty() => {
            let at = offset % bytes.len();
            bytes[at] ^= 1 << (offset % 8);
        }
        Some(_) => return Err(FaultPlan::io_error(IoOp::WalRead).into()),
    }
    if bytes.len() < SEGMENT_HEADER {
        return Err(PersistError::Truncated { context: "wal segment header" });
    }
    let mut r = Reader::new(&bytes);
    let magic = r.bytes(4, "wal magic")?;
    if magic != WAL_MAGIC {
        return Err(PersistError::BadMagic {
            expected: WAL_MAGIC,
            found: [magic[0], magic[1], magic[2], magic[3]],
        });
    }
    let version = r.u16("wal version")?;
    if version == 0 || version > WAL_VERSION {
        return Err(PersistError::UnsupportedVersion { found: version, supported: WAL_VERSION });
    }
    let first_seq = r.u64("wal first seq")?;
    let stored_crc = r.u32("wal header crc")?;
    if crc32(&bytes[..SEGMENT_HEADER - 4]) != stored_crc {
        return Err(PersistError::CorruptChecksum { section: WAL_MAGIC });
    }

    let mut records = Vec::new();
    let mut pos = SEGMENT_HEADER;
    let mut expected_seq = first_seq;
    while pos < bytes.len() {
        let Some(rec) = try_read_record(&bytes[pos..]) else { break };
        let (record, consumed) = rec;
        // Sequence numbers must be contiguous within a segment; a gap
        // means framing drifted even though a CRC happened to pass.
        if record.first_seq != expected_seq {
            break;
        }
        expected_seq += record.queries.len() as u64;
        pos += consumed;
        records.push(record);
    }
    Ok(SegmentRead { first_seq, records, truncated_bytes: (bytes.len() - pos) as u64 })
}

/// Attempts to decode one record from `bytes`; `None` on anything short,
/// corrupt, or structurally impossible (the torn-tail stop condition).
fn try_read_record(bytes: &[u8]) -> Option<(WalRecord, usize)> {
    if bytes.len() < 8 {
        return None;
    }
    let len = u32::from_le_bytes(bytes[..4].try_into().ok()?) as usize;
    let crc = u32::from_le_bytes(bytes[4..8].try_into().ok()?);
    let payload = bytes.get(8..8 + len)?;
    if crc32(payload) != crc {
        return None;
    }
    let first_seq = u64::from_le_bytes(payload.get(..8)?.try_into().ok()?);
    let count = u32::from_le_bytes(payload.get(8..12)?.try_into().ok()?) as usize;
    let mut queries = Vec::with_capacity(count.min(payload.len()));
    let mut pos = 12;
    for _ in 0..count {
        let (q, consumed) = ObservedQuery::decode_from(&payload[pos..])?;
        queries.push(q);
        pos += consumed;
    }
    if pos != payload.len() || queries.is_empty() {
        return None;
    }
    Some((WalRecord { first_seq, queries }, 8 + len))
}

#[cfg(test)]
mod tests {
    use super::*;
    use quicksel_geometry::Rect;

    fn batch(lo: f64, n: usize) -> Vec<ObservedQuery> {
        (0..n)
            .map(|i| {
                let l = lo + i as f64;
                ObservedQuery::new(Rect::from_bounds(&[(l, l + 1.0), (0.0, 2.0)]), 0.25)
            })
            .collect()
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("quicksel-wal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn batches_round_trip_with_batch_boundaries_preserved() {
        let dir = tmpdir("roundtrip");
        let mut w = WalWriter::open(&dir, 1, 1 << 20, false).unwrap();
        w.append_batch(&batch(0.0, 3)).unwrap();
        w.append_batch(&batch(10.0, 1)).unwrap();
        w.append_batch(&batch(20.0, 5)).unwrap();
        assert_eq!(w.next_seq(), 10);

        let segs = list_segments(&dir).unwrap();
        assert_eq!(segs.len(), 1);
        let read = read_segment(&segs[0].1).unwrap();
        assert_eq!(read.truncated_bytes, 0);
        assert_eq!(read.records.len(), 3);
        assert_eq!(read.records[0].first_seq, 1);
        assert_eq!(read.records[0].queries.len(), 3);
        assert_eq!(read.records[1].first_seq, 4);
        assert_eq!(read.records[2].first_seq, 5);
        assert_eq!(read.records[2].queries, batch(20.0, 5));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_splits_segments_at_the_size_threshold() {
        let dir = tmpdir("rotate");
        let mut w = WalWriter::open(&dir, 1, 200, false).unwrap();
        for i in 0..6 {
            w.append_batch(&batch(i as f64 * 100.0, 2)).unwrap();
        }
        let segs = list_segments(&dir).unwrap();
        assert!(segs.len() > 1, "expected rotation, got {} segment(s)", segs.len());
        // Every record lands in the segment whose range covers it, and
        // replaying all segments in order reproduces every batch.
        let mut seen = 0u64;
        for (first, path) in &segs {
            let read = read_segment(path).unwrap();
            assert_eq!(read.first_seq, *first);
            for rec in &read.records {
                assert_eq!(rec.first_seq, seen + 1);
                seen += rec.queries.len() as u64;
            }
        }
        assert_eq!(seen, 12);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tails_of_every_length_never_lose_a_preceding_record() {
        let dir = tmpdir("torn");
        let mut w = WalWriter::open(&dir, 1, 1 << 20, false).unwrap();
        let frame1 = w.append_batch(&batch(0.0, 2)).unwrap();
        w.append_batch(&batch(5.0, 2)).unwrap();
        let path = list_segments(&dir).unwrap().remove(0).1;
        let full = fs::read(&path).unwrap();
        // Where record 2 starts: the header plus record 1's frame.
        let after_first = SEGMENT_HEADER + frame1 as usize;
        assert_eq!(read_segment(&path).unwrap().records.len(), 2);

        // Any truncation point: never panics, never yields a partial
        // record, and record 1 survives any cut at or past `after_first`.
        for cut in SEGMENT_HEADER..full.len() {
            fs::write(&path, &full[..cut]).unwrap();
            let read = read_segment(&path).unwrap();
            for rec in &read.records {
                assert_eq!(rec.queries.len(), 2, "partial record surfaced at cut {cut}");
            }
            if cut >= after_first {
                assert!(!read.records.is_empty(), "record 1 lost at cut {cut}");
            }
            if cut < full.len() {
                assert!(read.records.len() < 2, "torn record 2 replayed at cut {cut}");
            }
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_mid_record_stops_replay_at_the_corruption() {
        let dir = tmpdir("corrupt");
        let mut w = WalWriter::open(&dir, 1, 1 << 20, false).unwrap();
        w.append_batch(&batch(0.0, 2)).unwrap();
        w.append_batch(&batch(5.0, 2)).unwrap();
        let path = list_segments(&dir).unwrap().remove(0).1;
        let mut bytes = fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 10] ^= 0xFF; // inside record 2's payload
        fs::write(&path, &bytes).unwrap();
        let read = read_segment(&path).unwrap();
        assert_eq!(read.records.len(), 1);
        assert!(read.truncated_bytes > 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn header_corruption_is_a_hard_error() {
        let dir = tmpdir("hdr");
        let w = WalWriter::open(&dir, 7, 1 << 20, false).unwrap();
        drop(w);
        let path = list_segments(&dir).unwrap().remove(0).1;
        let mut bytes = fs::read(&path).unwrap();
        bytes[6] ^= 0x01; // first_seq field
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(read_segment(&path), Err(PersistError::CorruptChecksum { .. })));
        fs::remove_dir_all(&dir).unwrap();
    }
}
