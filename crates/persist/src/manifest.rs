//! A streamable manifest of a durability tree — the unit of replication.
//!
//! A primary's durable state is a directory tree of three file kinds,
//! all written with tmp+rename discipline:
//!
//! * `meta.qsm` table descriptors (immutable after registration),
//! * `checkpoint-<ordinal>.qsc` snapshots (immutable once renamed),
//! * `wal-<first_seq>.qsl` segments (append-only; every byte below the
//!   current length is immutable).
//!
//! That discipline is what makes replication by *file copy* sound: a
//! replica can fetch any manifest entry as raw bytes — whole files for
//! meta and checkpoints, a `[local_len, len)` range for the one segment
//! that grew — and land in a directory the ordinary recovery path
//! ([`ShardDurability::recover`](crate::checkpoint::ShardDurability::recover))
//! reads exactly as it would after a local crash. No replication-specific
//! decode path exists, so a replica's recovered state is bit-identical to
//! a primary restart at the same watermark by construction.
//!
//! [`scan_manifest`] is deliberately a *snapshot with torn edges
//! allowed*: it may race a checkpoint rename or a WAL prune on the
//! primary. That is fine — a vanished file surfaces as a fetch error and
//! the replica retries against a fresh manifest; recovery tolerates every
//! intermediate state the primary itself can crash in.

use crate::{checkpoint, wal, PersistError};
use std::fs;
use std::path::{Component, Path, PathBuf};

/// What kind of durable artifact a manifest entry describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ManifestKind {
    /// A `meta.qsm` table descriptor.
    TableMeta,
    /// A finished `*.qsc` checkpoint.
    Checkpoint,
    /// A `*.qsl` WAL segment (possibly still growing).
    WalSegment,
}

impl ManifestKind {
    /// Wire tag of this kind.
    pub fn as_u8(self) -> u8 {
        match self {
            ManifestKind::TableMeta => 0,
            ManifestKind::Checkpoint => 1,
            ManifestKind::WalSegment => 2,
        }
    }

    /// Inverse of [`as_u8`](Self::as_u8); `None` for unknown tags.
    pub fn from_u8(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(ManifestKind::TableMeta),
            1 => Some(ManifestKind::Checkpoint),
            2 => Some(ManifestKind::WalSegment),
            _ => None,
        }
    }
}

/// One durable file a replica must mirror.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Path relative to the durability base directory, `/`-separated
    /// regardless of host platform (it travels over the wire).
    pub path: String,
    /// Artifact kind, derived from the file name.
    pub kind: ManifestKind,
    /// File length in bytes at scan time. For the active WAL segment
    /// this is a *low* watermark: the file may have grown since, but
    /// every byte below `len` is immutable.
    pub len: u64,
    /// Sequence watermark: the covered watermark for a checkpoint, the
    /// first row sequence for a WAL segment, `0` for table meta. Lets a
    /// replica skip fetching segments entirely below its applied state.
    pub watermark: u64,
}

/// Scans a durability base directory (as laid out by
/// `EstimatorRegistry::register_durable`: `tables/<dir>/shard-<i>/…`)
/// into a deterministic, path-sorted manifest. `.tmp` files and foreign
/// extensions are ignored, exactly as recovery ignores them.
pub fn scan_manifest(base: &Path) -> Result<Vec<ManifestEntry>, PersistError> {
    let mut entries = Vec::new();
    scan_dir(base, &mut PathBuf::new(), &mut entries)?;
    entries.sort_unstable_by(|a, b| a.path.cmp(&b.path));
    Ok(entries)
}

fn scan_dir(
    abs: &Path,
    rel: &mut PathBuf,
    out: &mut Vec<ManifestEntry>,
) -> Result<(), PersistError> {
    let dir = match fs::read_dir(abs) {
        Ok(d) => d,
        // Raced a prune of an empty table dir, or a fresh base with no
        // tables yet: both mean "nothing here to ship".
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(e.into()),
    };
    for entry in dir {
        let entry = entry?;
        let name_os = entry.file_name();
        let Some(name) = name_os.to_str() else { continue };
        let file_type = entry.file_type()?;
        if file_type.is_dir() {
            rel.push(name);
            scan_dir(&entry.path(), rel, out)?;
            rel.pop();
            continue;
        }
        let Some(kind) = classify(name) else { continue };
        let meta = match entry.metadata() {
            Ok(m) => m,
            // The file was pruned between listing and stat; the next
            // scan simply won't list it.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
            Err(e) => return Err(e.into()),
        };
        let watermark = match kind {
            ManifestKind::TableMeta => 0,
            ManifestKind::Checkpoint => {
                checkpoint::read_checkpoint_watermark(&entry.path()).unwrap_or(0)
            }
            ManifestKind::WalSegment => wal::parse_segment_name(name).unwrap_or(0),
        };
        out.push(ManifestEntry { path: rel_path(rel, name), kind, len: meta.len(), watermark });
    }
    Ok(())
}

/// Classifies a file name into a manifest kind, or `None` for files
/// replication must not ship (temp files, probes, foreign artifacts).
fn classify(name: &str) -> Option<ManifestKind> {
    if name.ends_with(".tmp") {
        return None;
    }
    if name == "meta.qsm" {
        Some(ManifestKind::TableMeta)
    } else if checkpoint::parse_checkpoint_name(name).is_some() {
        Some(ManifestKind::Checkpoint)
    } else if wal::parse_segment_name(name).is_some() {
        Some(ManifestKind::WalSegment)
    } else {
        None
    }
}

fn rel_path(rel: &Path, name: &str) -> String {
    let mut s = String::new();
    for comp in rel.components() {
        if let Component::Normal(c) = comp {
            if let Some(c) = c.to_str() {
                s.push_str(c);
                s.push('/');
            }
        }
    }
    s.push_str(name);
    s
}

/// Validates a manifest path received from a peer and resolves it under
/// `base`. Rejects absolute paths, `.`/`..` components, empty
/// components, and backslashes — a malicious or corrupt peer must not
/// be able to read or write outside the replica's directory.
pub fn resolve_manifest_path(base: &Path, rel: &str) -> Result<PathBuf, PersistError> {
    if rel.is_empty() || rel.len() > 4096 || rel.contains('\\') || rel.starts_with('/') {
        return Err(PersistError::Invalid { context: "manifest path" });
    }
    let mut out = base.to_path_buf();
    for comp in rel.split('/') {
        if comp.is_empty() || comp == "." || comp == ".." {
            return Err(PersistError::Invalid { context: "manifest path component" });
        }
        out.push(comp);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::{DurabilityOptions, ShardDurability};
    use quicksel_data::ObservedQuery;
    use quicksel_geometry::Rect;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("quicksel-manifest-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn batch(n: usize) -> Vec<ObservedQuery> {
        (0..n)
            .map(|i| {
                let l = i as f64;
                ObservedQuery::new(Rect::from_bounds(&[(l, l + 1.0)]), 0.5)
            })
            .collect()
    }

    #[test]
    fn scan_lists_checkpoints_and_wal_with_watermarks_sorted_by_path() {
        let base = tmpdir("scan");
        let shard = base.join("tables/t-00/shard-000");
        let mut d = ShardDurability::create(&shard, DurabilityOptions::default()).unwrap();
        d.log_batch(&batch(3)).unwrap();
        d.write_checkpoint(b"learner", &[]).unwrap();
        d.log_batch(&batch(2)).unwrap();
        fs::write(base.join("tables/t-00/meta.qsm"), b"QSTMxxxx").unwrap();
        fs::write(shard.join("checkpoint-99.tmp"), b"torn").unwrap();
        fs::write(shard.join("junk.bin"), b"ignored").unwrap();

        let m = scan_manifest(&base).unwrap();
        let paths: Vec<&str> = m.iter().map(|e| e.path.as_str()).collect();
        assert_eq!(
            paths,
            vec![
                "tables/t-00/meta.qsm",
                "tables/t-00/shard-000/checkpoint-00000000000000000001.qsc",
                "tables/t-00/shard-000/wal-00000000000000000004.qsl",
            ]
        );
        assert_eq!(m[0].kind, ManifestKind::TableMeta);
        assert_eq!(m[1].kind, ManifestKind::Checkpoint);
        assert_eq!(m[1].watermark, 3, "checkpoint covers the three logged rows");
        assert_eq!(m[2].kind, ManifestKind::WalSegment);
        assert_eq!(m[2].watermark, 4, "segment watermark is its first row seq");
        for e in &m {
            let disk = fs::metadata(resolve_manifest_path(&base, &e.path).unwrap()).unwrap();
            assert_eq!(e.len, disk.len());
        }
        fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn missing_base_scans_empty() {
        let base = tmpdir("missing");
        assert!(scan_manifest(&base).unwrap().is_empty());
    }

    #[test]
    fn resolve_rejects_escapes() {
        let base = PathBuf::from("/srv/replica");
        for bad in ["", "/abs", "../up", "a/../b", "a//b", "a/./b", "a\\b"] {
            assert!(resolve_manifest_path(&base, bad).is_err(), "{bad:?} must be rejected");
        }
        let ok = resolve_manifest_path(&base, "tables/t/shard-000/meta.qsm").unwrap();
        assert_eq!(ok, base.join("tables/t/shard-000/meta.qsm"));
    }

    #[test]
    fn kind_tags_round_trip() {
        for kind in [ManifestKind::TableMeta, ManifestKind::Checkpoint, ManifestKind::WalSegment] {
            assert_eq!(ManifestKind::from_u8(kind.as_u8()), Some(kind));
        }
        assert_eq!(ManifestKind::from_u8(9), None);
    }
}
