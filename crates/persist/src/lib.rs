//! # quicksel-persist — durable estimator state
//!
//! A learned selectivity estimator is expensive state: it distills the
//! entire query-feedback history of a table, and losing it on restart
//! means serving from the uniform prior until the workload re-teaches
//! the model. This crate makes that state durable with the classic
//! checkpoint + write-ahead-log pair, specialized to QuickSel's
//! exactness discipline:
//!
//! * [`format`](mod@format) — a versioned, checksummed, dependency-free container
//!   (magic, format version, CRC32-framed sections) shared by every
//!   artifact.
//! * [`codec`] — byte-exact serialization of a full
//!   [`QuickSelState`](quicksel_core::QuickSelState) capture: observed
//!   queries, workload points, model, RNG mid-stream state, and the
//!   incremental trainer's cached `Q`/`AᵀA`/`Aᵀs`/Cholesky factor, so a
//!   recovered estimator resumes **warm** and estimates **bit-identically**.
//! * [`wal`] — a per-shard write-ahead log of feedback batches between
//!   checkpoints: CRC-framed records, size-based segment rotation, and a
//!   replay that tolerates a torn tail (a crash mid-write costs at most
//!   the torn record, which by WAL ordering was never ingested under a
//!   checkpoint).
//! * [`checkpoint`] — atomic rename-into-place checkpoints with sequence
//!   watermarks; WAL segments are pruned only once a checkpoint covers
//!   them, and replay skips anything at or below the watermark, so a
//!   crash at *any* byte boundary neither loses a checkpointed row nor
//!   double-applies a replayed one.
//! * [`manifest`] — a path-sorted listing of a durability tree
//!   (meta + checkpoints + WAL segments) for checkpoint shipping: the
//!   tmp+rename discipline makes every named file safe to stream as
//!   raw bytes, so replicas mirror files and reuse the ordinary
//!   recovery path.
//!
//! The service layer (`quicksel-service`) wires these into its publish
//! loop; this crate owns only formats and files.

pub mod checkpoint;
pub mod codec;
pub mod format;
pub mod manifest;
pub mod wal;

pub use checkpoint::{CheckpointStats, DurabilityOptions, RecoveredShard, ShardDurability};
pub use codec::{
    decode_domain, decode_rect, decode_state, encode_domain, encode_rect, encode_state,
    STATE_MAGIC, STATE_VERSION,
};
pub use manifest::{resolve_manifest_path, scan_manifest, ManifestEntry, ManifestKind};
pub use wal::{SegmentRead, WalRecord, WalWriter};

use quicksel_core::{QuickSel, StateError};

/// Why a persistence operation failed. Every variant is a *returned*
/// error — corrupt or torn files must never panic the host process.
#[derive(Debug)]
pub enum PersistError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// The file does not start with the expected magic — not ours, or
    /// overwritten.
    BadMagic {
        /// The magic this reader expected.
        expected: [u8; 4],
        /// What the file actually started with.
        found: [u8; 4],
    },
    /// The file's format version is newer than this reader understands
    /// (or zero, which no writer produces).
    UnsupportedVersion {
        /// Version stamped in the file.
        found: u16,
        /// Newest version this build reads.
        supported: u16,
    },
    /// A section's (or the header's) CRC32 did not match its contents.
    CorruptChecksum {
        /// The four-byte tag of the failing section (`HDR\0` for the
        /// container header).
        section: [u8; 4],
    },
    /// The buffer ended before the structure it claimed to hold.
    Truncated {
        /// What was being read.
        context: &'static str,
    },
    /// The bytes parsed but describe an impossible state (bad enum tag,
    /// inconsistent lengths, a capture rejected by semantic validation).
    Invalid {
        /// What was inconsistent.
        context: &'static str,
    },
    /// A required container section is absent.
    MissingSection {
        /// The missing section's tag.
        tag: [u8; 4],
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let tag_str = |t: &[u8; 4]| String::from_utf8_lossy(t).into_owned();
        match self {
            PersistError::Io(e) => write!(f, "persist i/o error: {e}"),
            PersistError::BadMagic { expected, found } => {
                write!(f, "bad magic: expected {:?}, found {:?}", tag_str(expected), tag_str(found))
            }
            PersistError::UnsupportedVersion { found, supported } => {
                write!(f, "unsupported format version {found} (this build reads ≤ {supported})")
            }
            PersistError::CorruptChecksum { section } => {
                write!(f, "checksum mismatch in section {:?}", tag_str(section))
            }
            PersistError::Truncated { context } => write!(f, "truncated while reading {context}"),
            PersistError::Invalid { context } => write!(f, "invalid persisted state: {context}"),
            PersistError::MissingSection { tag } => {
                write!(f, "missing required section {:?}", tag_str(tag))
            }
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<StateError> for PersistError {
    fn from(e: StateError) -> Self {
        match e {
            StateError::Invalid { context } => PersistError::Invalid { context },
        }
    }
}

/// A learner whose complete training state can round-trip through bytes.
///
/// The contract is **exact equivalence**: `load_state(save_state()?)`
/// must yield a learner that estimates bit-identically *and* evolves
/// bit-identically under any future feedback (same models, same RNG
/// stream, same warm/cold refine decisions). The checkpoint layer treats
/// the bytes as opaque; versioning and checksums live inside them.
pub trait PersistLearner: Sized {
    /// Serializes the learner's complete state.
    fn save_state(&self) -> Result<Vec<u8>, PersistError>;

    /// Rebuilds a learner from [`save_state`](Self::save_state) bytes,
    /// validating before constructing — corrupt input returns an error,
    /// never panics.
    fn load_state(bytes: &[u8]) -> Result<Self, PersistError>;
}

impl PersistLearner for QuickSel {
    fn save_state(&self) -> Result<Vec<u8>, PersistError> {
        Ok(encode_state(&self.export_state()))
    }

    fn load_state(bytes: &[u8]) -> Result<Self, PersistError> {
        let state = decode_state(bytes)?;
        Ok(QuickSel::try_from_state(state)?)
    }
}
