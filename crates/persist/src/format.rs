//! The on-disk container format: magic + version + checksummed sections.
//!
//! Every durable artifact (checkpoints, table metadata, the learner
//! capture itself) shares one container layout so the open path has a
//! single set of failure modes:
//!
//! ```text
//! magic[4]  version:u16  section_count:u16
//! ┌ per section ────────────────────────────┐
//! │ tag[4]  offset:u64  len:u64  crc32:u32  │   (offset into payload)
//! └─────────────────────────────────────────┘
//! header_crc32:u32                              (over everything above)
//! payload bytes …
//! ```
//!
//! The header CRC catches torn or garbled section tables before any
//! offset is trusted; each section carries its own CRC32 (IEEE), verified
//! on access, so a flipped bit in one section reports
//! [`PersistError::CorruptChecksum`] with the section named instead of
//! feeding garbage to a decoder. Unknown trailing sections are ignored,
//! which is what lets a newer writer add sections without breaking an
//! older reader within the same major `version`.

use crate::PersistError;

/// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the ubiquitous
/// checksum zlib/gzip use, implemented table-free at build time since the
/// container cannot take a dependency.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut crc = !0u32;
    for &b in bytes {
        crc = TABLE[((crc ^ u32::from(b)) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Little-endian primitive appenders used by every codec.
pub trait PutBytes {
    /// Appends raw bytes.
    fn put_bytes(&mut self, bytes: &[u8]);

    /// Appends a `u16`, little-endian.
    fn put_u16(&mut self, v: u16) {
        self.put_bytes(&v.to_le_bytes());
    }

    /// Appends a `u32`, little-endian.
    fn put_u32(&mut self, v: u32) {
        self.put_bytes(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    fn put_u64(&mut self, v: u64) {
        self.put_bytes(&v.to_le_bytes());
    }

    /// Appends a `usize` widened to `u64`.
    fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an `f64` as its IEEE-754 bit pattern — exact, including
    /// NaN payloads and signed zeros (round-trips are bit round-trips).
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a length-prefixed UTF-8 string.
    fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.put_bytes(s.as_bytes());
    }
}

impl PutBytes for Vec<u8> {
    fn put_bytes(&mut self, bytes: &[u8]) {
        self.extend_from_slice(bytes);
    }
}

/// A bounds-checked cursor over an encoded buffer. Every getter fails
/// with [`PersistError::Truncated`] instead of panicking — torn files
/// are an expected input, not a bug.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], PersistError> {
        if self.remaining() < n {
            return Err(PersistError::Truncated { context });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], PersistError> {
        self.take(n, context)
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self, context: &'static str) -> Result<u16, PersistError> {
        Ok(u16::from_le_bytes(self.take(2, context)?.try_into().expect("2 bytes")))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self, context: &'static str) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4, context)?.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self, context: &'static str) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8, context)?.try_into().expect("8 bytes")))
    }

    /// Reads a `u64` narrowed to `usize`, rejecting values that do not
    /// fit (a 32-bit host reading a 64-bit capture).
    pub fn usize(&mut self, context: &'static str) -> Result<usize, PersistError> {
        usize::try_from(self.u64(context)?)
            .map_err(|_| PersistError::Invalid { context: "length overflows usize" })
    }

    /// Reads a length field that will be used to allocate or slice, with
    /// a sanity bound: the decoded collection cannot have more elements
    /// than there are bytes left, so anything larger is corruption — and
    /// rejecting it here keeps a flipped length bit from attempting a
    /// multi-terabyte allocation.
    pub fn bounded_len(
        &mut self,
        min_elem_bytes: usize,
        context: &'static str,
    ) -> Result<usize, PersistError> {
        let n = self.usize(context)?;
        if n.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(PersistError::Truncated { context });
        }
        Ok(n)
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self, context: &'static str) -> Result<f64, PersistError> {
        Ok(f64::from_bits(self.u64(context)?))
    }

    /// Reads a length-prefixed UTF-8 string (`u32` length, matching
    /// [`PutBytes::put_str`]).
    pub fn str(&mut self, context: &'static str) -> Result<String, PersistError> {
        let len = self.u32(context)? as usize;
        let bytes = self.take(len, context)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| PersistError::Invalid { context: "string is not UTF-8" })
    }
}

/// Fixed per-section table entry size: tag + offset + len + crc.
const SECTION_ENTRY: usize = 4 + 8 + 8 + 4;

/// Serializes sections into the container layout described in the module
/// docs. Section order is preserved; tags should be unique (lookup
/// returns the first match).
pub fn write_container(magic: [u8; 4], version: u16, sections: &[([u8; 4], &[u8])]) -> Vec<u8> {
    let header_len = 4 + 2 + 2 + sections.len() * SECTION_ENTRY;
    let payload_len: usize = sections.iter().map(|(_, b)| b.len()).sum();
    let mut out = Vec::with_capacity(header_len + 4 + payload_len);
    out.put_bytes(&magic);
    out.put_u16(version);
    out.put_u16(sections.len() as u16);
    let mut offset = 0u64;
    for (tag, bytes) in sections {
        out.put_bytes(tag);
        out.put_u64(offset);
        out.put_u64(bytes.len() as u64);
        out.put_u32(crc32(bytes));
        offset += bytes.len() as u64;
    }
    let header_crc = crc32(&out);
    out.put_u32(header_crc);
    for (_, bytes) in sections {
        out.put_bytes(bytes);
    }
    out
}

/// A parsed container header over a borrowed buffer; sections are
/// CRC-verified lazily on access.
pub struct Container<'a> {
    version: u16,
    entries: Vec<([u8; 4], usize, usize, u32)>,
    payload: &'a [u8],
}

impl<'a> Container<'a> {
    /// Parses and validates the header of `bytes`: magic, version range,
    /// structural bounds, header CRC.
    pub fn open(magic: [u8; 4], max_version: u16, bytes: &'a [u8]) -> Result<Self, PersistError> {
        let mut r = Reader::new(bytes);
        let found = r.bytes(4, "container magic")?;
        if found != magic {
            return Err(PersistError::BadMagic {
                expected: magic,
                found: [found[0], found[1], found[2], found[3]],
            });
        }
        let version = r.u16("container version")?;
        if version == 0 || version > max_version {
            return Err(PersistError::UnsupportedVersion {
                found: version,
                supported: max_version,
            });
        }
        let count = r.u16("section count")? as usize;
        let header_len = 4 + 2 + 2 + count * SECTION_ENTRY;
        if bytes.len() < header_len + 4 {
            return Err(PersistError::Truncated { context: "container header" });
        }
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let tag = r.bytes(4, "section tag")?;
            let offset = r.usize("section offset")?;
            let len = r.usize("section length")?;
            let crc = r.u32("section crc")?;
            entries.push(([tag[0], tag[1], tag[2], tag[3]], offset, len, crc));
        }
        let stored_crc = r.u32("header crc")?;
        if crc32(&bytes[..header_len]) != stored_crc {
            return Err(PersistError::CorruptChecksum { section: *b"HDR\0" });
        }
        let payload = &bytes[header_len + 4..];
        for &(_, offset, len, _) in &entries {
            if offset.checked_add(len).is_none_or(|end| end > payload.len()) {
                return Err(PersistError::Truncated { context: "section payload" });
            }
        }
        Ok(Self { version, entries, payload })
    }

    /// The container's format version.
    pub fn version(&self) -> u16 {
        self.version
    }

    /// Returns a section's bytes, verifying its CRC.
    pub fn section(&self, tag: [u8; 4]) -> Result<&'a [u8], PersistError> {
        let &(_, offset, len, crc) = self
            .entries
            .iter()
            .find(|&&(t, ..)| t == tag)
            .ok_or(PersistError::MissingSection { tag })?;
        let bytes = &self.payload[offset..offset + len];
        if crc32(bytes) != crc {
            return Err(PersistError::CorruptChecksum { section: tag });
        }
        Ok(bytes)
    }

    /// Like [`section`](Self::section) but `Ok(None)` when absent — for
    /// optional sections (e.g. a trainer capture before any refine).
    pub fn section_opt(&self, tag: [u8; 4]) -> Result<Option<&'a [u8]>, PersistError> {
        match self.section(tag) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(PersistError::MissingSection { .. }) => Ok(None),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn container_round_trip() {
        let bytes =
            write_container(*b"TEST", 3, &[(*b"AAAA", &[1, 2, 3]), (*b"BBBB", &[4, 5, 6, 7])]);
        let c = Container::open(*b"TEST", 3, &bytes).unwrap();
        assert_eq!(c.version(), 3);
        assert_eq!(c.section(*b"AAAA").unwrap(), &[1, 2, 3]);
        assert_eq!(c.section(*b"BBBB").unwrap(), &[4, 5, 6, 7]);
        assert!(matches!(
            c.section(*b"ZZZZ"),
            Err(PersistError::MissingSection { tag }) if tag == *b"ZZZZ"
        ));
        assert!(c.section_opt(*b"ZZZZ").unwrap().is_none());
    }

    #[test]
    fn wrong_magic_and_version_reject() {
        let bytes = write_container(*b"TEST", 2, &[]);
        assert!(matches!(Container::open(*b"OTHR", 2, &bytes), Err(PersistError::BadMagic { .. })));
        assert!(matches!(
            Container::open(*b"TEST", 1, &bytes),
            Err(PersistError::UnsupportedVersion { found: 2, supported: 1 })
        ));
    }

    #[test]
    fn flipped_payload_bit_is_detected_on_access() {
        let mut bytes = write_container(*b"TEST", 1, &[(*b"AAAA", &[9u8; 16])]);
        let n = bytes.len();
        bytes[n - 1] ^= 0x01;
        let c = Container::open(*b"TEST", 1, &bytes).unwrap();
        assert!(matches!(
            c.section(*b"AAAA"),
            Err(PersistError::CorruptChecksum { section }) if section == *b"AAAA"
        ));
    }

    #[test]
    fn flipped_header_bit_rejects_the_whole_container() {
        let mut bytes = write_container(*b"TEST", 1, &[(*b"AAAA", &[9u8; 16])]);
        bytes[9] ^= 0x40; // inside the section table
        assert!(matches!(
            Container::open(*b"TEST", 1, &bytes),
            Err(PersistError::CorruptChecksum { .. })
        ));
    }

    #[test]
    fn truncated_containers_reject_without_panicking() {
        let bytes = write_container(*b"TEST", 1, &[(*b"AAAA", &[9u8; 16])]);
        for cut in 0..bytes.len() {
            let _ = Container::open(*b"TEST", 1, &bytes[..cut]);
        }
    }

    #[test]
    fn oversized_length_field_rejects_instead_of_allocating() {
        let mut buf = Vec::new();
        buf.put_u64(u64::MAX);
        let mut r = Reader::new(&buf);
        assert!(r.bounded_len(8, "huge").is_err());
    }
}
