//! Crash-recovering checkpoints over the WAL: atomic snapshots of a
//! shard's learner plus watermark bookkeeping that keeps replay exact.
//!
//! A shard directory looks like:
//!
//! ```text
//! shard-000/
//!   checkpoint-00000000000000000003.qsc   (newest wins; last few kept)
//!   checkpoint-00000000000000000002.qsc
//!   wal-00000000000000000121.qsl          (rows 121…)
//! ```
//!
//! **Invariants** that make crash recovery lossless and replay
//! idempotent, at every byte boundary a crash can land on:
//!
//! 1. A batch is WAL-logged *before* it is fed to the learner, under the
//!    same lock. A crash after the log but before the ingest replays the
//!    batch — identical outcome; a crash before the log loses a batch
//!    that was never acknowledged.
//! 2. A checkpoint is taken under that lock too, so the captured learner
//!    state covers exactly the rows with `seq ≤ watermark`
//!    (`watermark = next_seq − 1` at capture time).
//! 3. Checkpoints are written to a temp file and atomically renamed into
//!    place: a crash mid-write leaves a `.tmp` (ignored) and the previous
//!    checkpoint intact.
//! 4. WAL segments are pruned only *after* the rename, and only segments
//!    whose rows are all `≤ watermark`. A crash between rename and prune
//!    leaves covered segments behind — harmless, because replay skips
//!    every record at or below the recovered watermark (no double-apply).
//! 5. Recovery scans checkpoints newest-first and skips corrupt ones
//!    (counted), falling back to older state plus a longer WAL replay —
//!    torn checkpoints degrade recovery time, never correctness.

use crate::format::{write_container, Container, PutBytes, Reader};
use crate::wal::{self, WalWriter};
use crate::PersistError;
use quicksel_data::ObservedQuery;
use quicksel_fault::{FaultPlan, IoFault, IoOp};
use std::fs;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Magic of a checkpoint container.
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"QSCK";
/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u16 = 1;

const SEC_META: [u8; 4] = *b"META";
const SEC_LEARNER: [u8; 4] = *b"LRNR";
const CHECKPOINT_EXT: &str = "qsc";

/// Tuning knobs for a shard's durability pipeline.
#[derive(Debug, Clone)]
pub struct DurabilityOptions {
    /// Rows ingested since the last checkpoint that trigger a new one.
    pub checkpoint_rows: u64,
    /// Wall-clock interval after which pending rows trigger a checkpoint
    /// even below the row threshold.
    pub checkpoint_interval: Duration,
    /// WAL segment rotation threshold, in bytes.
    pub segment_bytes: u64,
    /// How many finished checkpoints to keep (≥ 1); older ones are
    /// deleted after each successful write.
    pub keep_checkpoints: usize,
    /// `fsync` the WAL after every batch. Off by default: process
    /// crashes (the common failure) never lose flushed writes, only
    /// whole-machine crashes can, and per-batch fsync costs an order of
    /// magnitude in ingest latency.
    pub sync_wal: bool,
    /// Consecutive persist failures that flip a shard from healthy to
    /// degraded (read-only) serving.
    pub degrade_after: u32,
    /// Initial delay before a degraded shard write-probes its directory
    /// to re-arm; doubles per failed probe.
    pub probe_backoff: Duration,
    /// Upper bound on the probe backoff.
    pub probe_backoff_max: Duration,
    /// Deterministic fault-injection plan threaded through every durable
    /// IO operation this shard performs. Disabled by default: the only
    /// cost on the no-fault path is one `Option` branch per operation.
    pub fault: FaultPlan,
}

impl Default for DurabilityOptions {
    fn default() -> Self {
        Self {
            checkpoint_rows: 4096,
            checkpoint_interval: Duration::from_secs(60),
            segment_bytes: 4 << 20,
            keep_checkpoints: 2,
            sync_wal: false,
            degrade_after: 3,
            probe_backoff: Duration::from_millis(100),
            probe_backoff_max: Duration::from_secs(5),
            fault: FaultPlan::disabled(),
        }
    }
}

/// Counters describing a shard's durability activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Checkpoints successfully written (lifetime, restored across
    /// recoveries).
    pub checkpoints_written: u64,
    /// WAL record bytes appended by this process.
    pub wal_bytes: u64,
}

/// What recovery found in a shard directory.
#[derive(Debug)]
pub struct RecoveredShard {
    /// The newest valid checkpoint's learner bytes, if any checkpoint
    /// survived.
    pub learner_bytes: Option<Vec<u8>>,
    /// The service counter array saved with that checkpoint (empty when
    /// starting fresh).
    pub counters: Vec<u64>,
    /// Highest sequence number the checkpoint covers (0 = none).
    pub watermark: u64,
    /// WAL batches with rows **above** the watermark, in ingest order —
    /// exactly the feedback to replay.
    pub batches: Vec<Vec<ObservedQuery>>,
    /// Rows contained in `batches`.
    pub replayed_rows: u64,
    /// Bytes ignored across torn WAL tails.
    pub truncated_wal_bytes: u64,
    /// Corrupt or unreadable checkpoints skipped before one loaded (or
    /// before falling back to fresh state).
    pub checkpoints_skipped: u64,
}

/// Owns one shard's durable files: the active WAL writer plus
/// checkpoint bookkeeping. All methods take `&mut self`; the service
/// serializes calls under its learner lock.
pub struct ShardDurability {
    dir: PathBuf,
    opts: DurabilityOptions,
    wal: WalWriter,
    /// Ordinal the next checkpoint file will use.
    next_ordinal: u64,
    /// Highest sequence number covered by a finished checkpoint.
    watermark: u64,
    checkpoints_written: u64,
}

impl ShardDurability {
    /// Creates a fresh shard directory (or reuses an empty one): WAL at
    /// sequence 1, no checkpoints.
    pub fn create(dir: &Path, opts: DurabilityOptions) -> Result<Self, PersistError> {
        fs::create_dir_all(dir)?;
        let wal = WalWriter::open_with_faults(
            dir,
            1,
            opts.segment_bytes,
            opts.sync_wal,
            opts.fault.clone(),
        )?;
        Ok(Self {
            dir: dir.to_path_buf(),
            opts,
            wal,
            next_ordinal: 1,
            watermark: 0,
            checkpoints_written: 0,
        })
    }

    /// Recovers a shard directory: loads the newest valid checkpoint,
    /// reads the WAL tail above its watermark, and opens a fresh WAL
    /// segment positioned after everything found. The caller feeds
    /// [`RecoveredShard::batches`] back through its normal ingest path
    /// (without re-logging) to finish recovery.
    pub fn recover(
        dir: &Path,
        opts: DurabilityOptions,
    ) -> Result<(Self, RecoveredShard), PersistError> {
        fs::create_dir_all(dir)?;

        // Newest-first checkpoint scan; corrupt ones are skipped, not fatal.
        let mut checkpoints = list_checkpoints(dir)?;
        checkpoints.sort_unstable_by_key(|&(ord, _)| std::cmp::Reverse(ord));
        let mut skipped = 0u64;
        let mut loaded: Option<(u64, CheckpointMeta, Vec<u8>)> = None;
        for (ordinal, path) in &checkpoints {
            match load_checkpoint_with(path, &opts.fault) {
                Ok((meta, learner)) => {
                    loaded = Some((*ordinal, meta, learner));
                    break;
                }
                Err(_) => skipped += 1,
            }
        }
        let (max_ordinal, meta, learner_bytes) = match loaded {
            Some((ord, meta, learner)) => (ord, Some(meta), Some(learner)),
            None => (checkpoints.first().map_or(0, |&(ord, _)| ord), None, None),
        };
        let watermark = meta.as_ref().map_or(0, |m| m.watermark);

        // Replay the WAL above the watermark, preserving batch boundaries.
        let mut batches = Vec::new();
        let mut replayed_rows = 0u64;
        let mut truncated = 0u64;
        let mut next_seq = watermark + 1;
        for (_, path) in wal::list_segments(dir)? {
            let read = match wal::read_segment_with(&path, &opts.fault) {
                Ok(read) => read,
                // An unreadable segment header means the file never got
                // past creation; nothing in it was acknowledged.
                Err(_) => continue,
            };
            truncated += read.truncated_bytes;
            for rec in read.records {
                let end = rec.first_seq + rec.queries.len() as u64;
                // Records are logged and checkpointed at batch
                // boundaries, so each is entirely covered or entirely
                // uncovered; `end > watermark + 1` would mean a record
                // straddles the watermark, which the write path cannot
                // produce — skip such a record defensively.
                if rec.first_seq <= watermark {
                    continue;
                }
                // Duplicate coverage across segments (a pre-crash prune
                // that never finished) replays in order; seq tracking
                // drops anything already seen.
                if rec.first_seq < next_seq {
                    continue;
                }
                replayed_rows += rec.queries.len() as u64;
                next_seq = end;
                batches.push(rec.queries);
            }
        }

        let wal = WalWriter::open_with_faults(
            dir,
            next_seq,
            opts.segment_bytes,
            opts.sync_wal,
            opts.fault.clone(),
        )?;
        let this = Self {
            dir: dir.to_path_buf(),
            opts,
            wal,
            next_ordinal: max_ordinal + 1,
            watermark,
            checkpoints_written: meta.as_ref().map_or(0, |m| m.checkpoints_written),
        };
        let report = RecoveredShard {
            learner_bytes,
            counters: meta.map_or_else(Vec::new, |m| m.counters),
            watermark,
            batches,
            replayed_rows,
            truncated_wal_bytes: truncated,
            checkpoints_skipped: skipped,
        };
        Ok((this, report))
    }

    /// True when any checkpoint or WAL segment exists under `dir` — the
    /// create-or-recover decision point.
    pub fn exists(dir: &Path) -> bool {
        list_checkpoints(dir).map(|c| !c.is_empty()).unwrap_or(false)
            || wal::list_segments(dir).map(|s| !s.is_empty()).unwrap_or(false)
    }

    /// The shard's durability configuration.
    pub fn options(&self) -> &DurabilityOptions {
        &self.opts
    }

    /// Sequence number the next ingested row will receive.
    pub fn next_seq(&self) -> u64 {
        self.wal.next_seq()
    }

    /// Rows ingested since the last finished checkpoint.
    pub fn rows_since_checkpoint(&self) -> u64 {
        self.wal.next_seq() - 1 - self.watermark
    }

    /// Current durability counters.
    pub fn stats(&self) -> CheckpointStats {
        CheckpointStats {
            checkpoints_written: self.checkpoints_written,
            wal_bytes: self.wal.bytes_logged(),
        }
    }

    /// Logs one feedback batch ahead of ingestion; returns bytes written.
    pub fn log_batch(&mut self, batch: &[ObservedQuery]) -> Result<u64, PersistError> {
        self.wal.append_batch(batch)
    }

    /// Writes a checkpoint covering everything logged so far: the opaque
    /// learner capture plus the caller's counter array, to a temp file
    /// renamed into place. On success the WAL rotates and all fully
    /// covered segments are deleted.
    pub fn write_checkpoint(
        &mut self,
        learner_bytes: &[u8],
        counters: &[u64],
    ) -> Result<(), PersistError> {
        let watermark = self.wal.next_seq() - 1;
        let mut meta = Vec::new();
        meta.put_u64(watermark);
        meta.put_u64(self.checkpoints_written + 1);
        meta.put_u32(counters.len() as u32);
        for &c in counters {
            meta.put_u64(c);
        }
        let bytes = write_container(
            CHECKPOINT_MAGIC,
            CHECKPOINT_VERSION,
            &[(SEC_META, &meta), (SEC_LEARNER, learner_bytes)],
        );

        let final_path = self.dir.join(checkpoint_name(self.next_ordinal));
        let tmp_path = final_path.with_extension("tmp");
        match self.opts.fault.io(IoOp::CheckpointWrite, bytes.len()) {
            None => fs::write(&tmp_path, &bytes)?,
            Some(IoFault::Short { keep } | IoFault::Torn { keep }) => {
                // Torn temp file, never renamed: recovery ignores it.
                let _ = fs::write(&tmp_path, &bytes[..keep.min(bytes.len())]);
                return Err(FaultPlan::io_error(IoOp::CheckpointWrite).into());
            }
            Some(IoFault::FlushError) => {
                // The bytes land but the flush "fails": a complete temp
                // file that never reaches the rename — exactly a crash
                // between write and rename.
                let _ = fs::write(&tmp_path, &bytes);
                return Err(FaultPlan::io_error(IoOp::CheckpointWrite).into());
            }
            Some(_) => return Err(FaultPlan::io_error(IoOp::CheckpointWrite).into()),
        }
        match self.opts.fault.io(IoOp::CheckpointRename, bytes.len()) {
            None => fs::rename(&tmp_path, &final_path)?,
            Some(_) => return Err(FaultPlan::io_error(IoOp::CheckpointRename).into()),
        }

        self.next_ordinal += 1;
        self.watermark = watermark;
        self.checkpoints_written += 1;

        // Past the rename, the checkpoint is durable: rotate the WAL so
        // a fresh segment starts above the watermark, then prune surplus
        // checkpoints and covered WAL segments. The WAL prunes against
        // the **oldest retained** checkpoint's watermark, not this one's:
        // recovery may have to fall back to that older checkpoint (if the
        // newest later proves corrupt), and it then needs the WAL tail
        // above *its* watermark. Rotation at every checkpoint guarantees
        // each watermark is a segment boundary, so `first_seq ≤ W` is
        // exactly "every row ≤ W". Prune failures are ignored: leftover
        // files only cost disk, and replay skips them by watermark.
        self.wal.rotate()?;
        if let Ok(mut checkpoints) = list_checkpoints(&self.dir) {
            checkpoints.sort_unstable_by_key(|&(ord, _)| std::cmp::Reverse(ord));
            for (_, path) in
                checkpoints.drain(self.opts.keep_checkpoints.max(1).min(checkpoints.len())..)
            {
                let _ = fs::remove_file(path);
            }
            // Oldest retained checkpoint; an unreadable one pins the WAL
            // (watermark 0) rather than risking a prune it cannot cover.
            let prune_below = checkpoints
                .last()
                .map_or(watermark, |(_, path)| read_checkpoint_watermark(path).unwrap_or(0));
            if let Ok(segments) = wal::list_segments(&self.dir) {
                // A segment's rows end where the next segment begins (the
                // active one ends at the writer's cursor). Judging
                // coverage by the *last* row, not just the first, keeps a
                // straddling segment — possible when an earlier rotation
                // failed and rows past the watermark landed in a segment
                // that starts below it — from being pruned with
                // unreplayed rows inside.
                for (i, (first_seq, path)) in segments.iter().enumerate() {
                    let last_row = segments
                        .get(i + 1)
                        .map_or(self.wal.next_seq() - 1, |&(next_first, _)| next_first - 1);
                    if *first_seq <= prune_below && last_row <= prune_below {
                        let _ = fs::remove_file(path);
                    }
                }
            }
        }
        Ok(())
    }

    /// Write-probes the shard directory: proves the disk accepts (and
    /// can remove) a small file again, then rotates the WAL so a torn
    /// tail left by a mid-write crash stops blocking appends. The
    /// degraded-mode re-arm path: a successful probe means ingest can be
    /// accepted again.
    pub fn probe(&mut self) -> Result<(), PersistError> {
        if self.opts.fault.io(IoOp::Probe, 0).is_some() {
            return Err(FaultPlan::io_error(IoOp::Probe).into());
        }
        let probe_path = self.dir.join("probe.tmp");
        fs::write(&probe_path, b"quicksel-probe")?;
        let _ = fs::remove_file(&probe_path);
        self.wal.rotate()
    }
}

/// The file name of checkpoint `ordinal`.
fn checkpoint_name(ordinal: u64) -> String {
    format!("checkpoint-{ordinal:020}.{CHECKPOINT_EXT}")
}

pub(crate) fn parse_checkpoint_name(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("checkpoint-")?.strip_suffix(&format!(".{CHECKPOINT_EXT}"))?;
    rest.parse().ok()
}

/// Lists checkpoint files as `(ordinal, path)`, unsorted.
fn list_checkpoints(dir: &Path) -> Result<Vec<(u64, PathBuf)>, PersistError> {
    let mut out = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(e.into()),
    };
    for entry in entries {
        let entry = entry?;
        if let Some(ord) = entry.file_name().to_str().and_then(parse_checkpoint_name) {
            out.push((ord, entry.path()));
        }
    }
    Ok(out)
}

/// Reads just the watermark from a checkpoint's META section; `None` on
/// any corruption (the caller treats that as "covers nothing").
pub(crate) fn read_checkpoint_watermark(path: &Path) -> Option<u64> {
    let bytes = fs::read(path).ok()?;
    let c = Container::open(CHECKPOINT_MAGIC, CHECKPOINT_VERSION, &bytes).ok()?;
    Reader::new(c.section(SEC_META).ok()?).u64("checkpoint watermark").ok()
}

struct CheckpointMeta {
    watermark: u64,
    checkpoints_written: u64,
    counters: Vec<u64>,
}

/// Loads a checkpoint with a fault seam over the raw bytes: injected
/// corruption flips a bit *after* the read, so the container's CRC
/// machinery (not the injector) decides what survives.
fn load_checkpoint_with(
    path: &Path,
    fault: &FaultPlan,
) -> Result<(CheckpointMeta, Vec<u8>), PersistError> {
    let mut bytes = fs::read(path)?;
    match fault.io(IoOp::CheckpointRead, bytes.len()) {
        None => {}
        Some(IoFault::Corrupt { offset }) if !bytes.is_empty() => {
            let at = offset % bytes.len();
            bytes[at] ^= 1 << (offset % 8);
        }
        Some(_) => return Err(FaultPlan::io_error(IoOp::CheckpointRead).into()),
    }
    let c = Container::open(CHECKPOINT_MAGIC, CHECKPOINT_VERSION, &bytes)?;
    let mut r = Reader::new(c.section(SEC_META)?);
    let watermark = r.u64("checkpoint watermark")?;
    let checkpoints_written = r.u64("checkpoint counter")?;
    let n = r.u32("service counter count")? as usize;
    let counters = (0..n).map(|_| r.u64("service counter")).collect::<Result<Vec<_>, _>>()?;
    let learner = c.section(SEC_LEARNER)?.to_vec();
    Ok((CheckpointMeta { watermark, checkpoints_written, counters }, learner))
}

#[cfg(test)]
mod tests {
    use super::*;
    use quicksel_geometry::Rect;

    fn batch(lo: f64, n: usize) -> Vec<ObservedQuery> {
        (0..n)
            .map(|i| {
                let l = lo + i as f64;
                ObservedQuery::new(Rect::from_bounds(&[(l, l + 1.0), (0.0, 2.0)]), 0.5)
            })
            .collect()
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("quicksel-ckpt-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn checkpoint_then_recover_skips_covered_rows_and_replays_the_tail() {
        let dir = tmpdir("basic");
        let mut d = ShardDurability::create(&dir, DurabilityOptions::default()).unwrap();
        d.log_batch(&batch(0.0, 3)).unwrap();
        d.log_batch(&batch(10.0, 2)).unwrap();
        d.write_checkpoint(b"learner-v1", &[5, 2]).unwrap();
        d.log_batch(&batch(20.0, 4)).unwrap();
        drop(d);

        let (d, rec) = ShardDurability::recover(&dir, DurabilityOptions::default()).unwrap();
        assert_eq!(rec.watermark, 5);
        assert_eq!(rec.learner_bytes.as_deref(), Some(&b"learner-v1"[..]));
        assert_eq!(rec.counters, vec![5, 2]);
        assert_eq!(rec.batches.len(), 1, "only the post-checkpoint batch replays");
        assert_eq!(rec.batches[0], batch(20.0, 4));
        assert_eq!(rec.replayed_rows, 4);
        assert_eq!(rec.checkpoints_skipped, 0);
        assert_eq!(d.next_seq(), 10);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fresh_directory_recovers_to_empty_state() {
        let dir = tmpdir("fresh");
        assert!(!ShardDurability::exists(&dir));
        let (d, rec) = ShardDurability::recover(&dir, DurabilityOptions::default()).unwrap();
        assert!(rec.learner_bytes.is_none());
        assert_eq!(rec.watermark, 0);
        assert!(rec.batches.is_empty());
        assert_eq!(d.next_seq(), 1);
        assert!(ShardDurability::exists(&dir), "recovery opened a WAL segment");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_newest_checkpoint_falls_back_to_the_previous_one() {
        let dir = tmpdir("fallback");
        let mut d = ShardDurability::create(&dir, DurabilityOptions::default()).unwrap();
        d.log_batch(&batch(0.0, 2)).unwrap();
        d.write_checkpoint(b"old", &[2]).unwrap();
        d.log_batch(&batch(10.0, 3)).unwrap();
        d.write_checkpoint(b"new", &[5]).unwrap();
        drop(d);

        // Flip a payload bit in the newest checkpoint.
        let newest = dir.join(checkpoint_name(2));
        let mut bytes = fs::read(&newest).unwrap();
        let n = bytes.len();
        bytes[n - 2] ^= 0xFF;
        fs::write(&newest, &bytes).unwrap();

        let (_, rec) = ShardDurability::recover(&dir, DurabilityOptions::default()).unwrap();
        assert_eq!(rec.checkpoints_skipped, 1);
        assert_eq!(rec.learner_bytes.as_deref(), Some(&b"old"[..]));
        assert_eq!(rec.watermark, 2);
        // The rows the torn checkpoint claimed to cover replay from the
        // WAL instead — nothing checkpointed under "old" is lost…
        assert_eq!(rec.replayed_rows, 3);
        assert_eq!(rec.batches, vec![batch(10.0, 3)]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn keep_limit_prunes_old_checkpoints_and_covered_segments() {
        let dir = tmpdir("prune");
        let opts = DurabilityOptions { keep_checkpoints: 2, ..Default::default() };
        let mut d = ShardDurability::create(&dir, opts).unwrap();
        for i in 0..5 {
            d.log_batch(&batch(i as f64 * 50.0, 2)).unwrap();
            d.write_checkpoint(format!("v{i}").as_bytes(), &[]).unwrap();
        }
        let checkpoints = list_checkpoints(&dir).unwrap();
        assert_eq!(checkpoints.len(), 2);
        // WAL coverage matches the retained set: the segment above the
        // *oldest retained* watermark (rows 9–10, needed if recovery
        // falls back to checkpoint 4) plus the fresh one. Everything the
        // oldest retained checkpoint covers is gone.
        let segments = wal::list_segments(&dir).unwrap();
        assert_eq!(segments.iter().map(|&(s, _)| s).collect::<Vec<_>>(), vec![9, 11]);
        assert_eq!(d.next_seq(), 11);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn leftover_tmp_file_from_a_torn_write_is_ignored() {
        let dir = tmpdir("tmp");
        let mut d = ShardDurability::create(&dir, DurabilityOptions::default()).unwrap();
        d.log_batch(&batch(0.0, 2)).unwrap();
        d.write_checkpoint(b"good", &[]).unwrap();
        fs::write(dir.join("checkpoint-99999999999999999999.tmp"), b"torn garbage").unwrap();
        drop(d);
        let (_, rec) = ShardDurability::recover(&dir, DurabilityOptions::default()).unwrap();
        assert_eq!(rec.learner_bytes.as_deref(), Some(&b"good"[..]));
        assert_eq!(rec.checkpoints_skipped, 0);
        fs::remove_dir_all(&dir).unwrap();
    }
}
