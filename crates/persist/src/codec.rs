//! Codecs for estimator state: [`QuickSelState`] (and everything it
//! contains) to and from the sectioned container format.
//!
//! All floating-point values travel as IEEE-754 bit patterns, so a
//! decode-encode round trip is byte-identical and a restored estimator
//! reproduces its source **bit for bit** — the durability layer's
//! equality contract leans entirely on this.
//!
//! Decoding validates structure (lengths, tags, bounds) and returns
//! [`PersistError`] on anything inconsistent; semantic validation
//! (positive volumes, finite weights, cross-field invariants) happens in
//! [`QuickSel::try_from_state`], whose [`StateError`] is wrapped into
//! [`PersistError::Invalid`]. Nothing in this module panics on corrupt
//! input.
//!
//! [`QuickSel::try_from_state`]: quicksel_core::QuickSel::try_from_state
//! [`StateError`]: quicksel_core::StateError

use crate::format::{write_container, Container, PutBytes, Reader};
use crate::PersistError;
use quicksel_core::{QuickSelConfig, QuickSelState, RefinePolicy, TrainerState, TrainingMethod};
use quicksel_data::ObservedQuery;
use quicksel_geometry::{ColumnMeta, ColumnType, Domain, Interval, Rect};
use quicksel_linalg::DMatrix;

/// Magic of an estimator-state container.
pub const STATE_MAGIC: [u8; 4] = *b"QSES";
/// Current estimator-state format version.
///
/// * **v1** — unbounded history: no history-budget config, no
///   compaction bookkeeping, no drift-detector state, unsigned pending
///   Woodbury rows.
/// * **v2** — adds `max_history`/`drift_ratio`/`drift_patience` to the
///   config, per-query point counts, the compacted-prefix bookkeeping,
///   drift-detector state, and per-row signs on the trainer's pending
///   updates. v1 containers still decode: the new fields restore to the
///   exact semantics a v1 estimator had (unbounded history, default
///   drift knobs, all-positive pending rows), and `point_counts` is
///   reconstructed from the points-per-query setting.
pub const STATE_VERSION: u16 = 2;

const SEC_DOMAIN: [u8; 4] = *b"DOMN";
const SEC_CONFIG: [u8; 4] = *b"CONF";
const SEC_QUERIES: [u8; 4] = *b"QRYS";
const SEC_POINTS: [u8; 4] = *b"PNTS";
const SEC_MODEL: [u8; 4] = *b"MODL";
const SEC_MISC: [u8; 4] = *b"MISC";
const SEC_TRAINER: [u8; 4] = *b"TRNR";

fn put_interval(out: &mut Vec<u8>, iv: &Interval) {
    out.put_f64(iv.lo);
    out.put_f64(iv.hi);
}

fn get_interval(r: &mut Reader<'_>) -> Result<Interval, PersistError> {
    Ok(Interval::new(r.f64("interval lo")?, r.f64("interval hi")?))
}

/// Encodes a [`Rect`] (dimension count, then per-side lo/hi as IEEE-754
/// bit patterns). This layout is shared verbatim by the state snapshot,
/// the feedback WAL
/// ([`ObservedQuery::encode_into`](quicksel_data::ObservedQuery::encode_into)
/// is exactly this plus one selectivity `f64`), and the network wire
/// protocol — one rectangle codec, bit-exact everywhere.
pub fn encode_rect(out: &mut Vec<u8>, rect: &Rect) {
    out.put_u32(rect.sides().len() as u32);
    for side in rect.sides() {
        put_interval(out, side);
    }
}

/// Decodes an [`encode_rect`] rectangle, bounding the claimed dimension
/// count against the remaining bytes so a hostile length can neither
/// over-allocate nor panic.
pub fn decode_rect(r: &mut Reader<'_>) -> Result<Rect, PersistError> {
    let dim = r.u32("rect dim")? as usize;
    if dim.saturating_mul(16) > r.remaining() {
        return Err(PersistError::Truncated { context: "rect sides" });
    }
    let sides = (0..dim).map(|_| get_interval(r)).collect::<Result<Vec<_>, _>>()?;
    Ok(Rect::new(sides))
}

/// Encodes a [`Domain`] (column names, types, dictionaries, bounds).
pub fn encode_domain(out: &mut Vec<u8>, domain: &Domain) {
    out.put_u32(domain.columns().len() as u32);
    for col in domain.columns() {
        out.put_str(&col.name);
        match &col.ty {
            ColumnType::Real => out.put_u32(0),
            ColumnType::Integer => out.put_u32(1),
            ColumnType::Categorical(dict) => {
                out.put_u32(2);
                out.put_u32(dict.len() as u32);
                for v in dict {
                    out.put_str(v);
                }
            }
        }
        put_interval(out, &col.bounds);
    }
}

/// Decodes a [`Domain`], rejecting (not panicking on) empty schemas and
/// empty column bounds — the invariants `Domain::new` asserts.
pub fn decode_domain(r: &mut Reader<'_>) -> Result<Domain, PersistError> {
    let count = r.u32("column count")? as usize;
    if count == 0 {
        return Err(PersistError::Invalid { context: "domain has no columns" });
    }
    let mut columns = Vec::with_capacity(count.min(r.remaining()));
    for _ in 0..count {
        let name = r.str("column name")?;
        let ty = match r.u32("column type tag")? {
            0 => ColumnType::Real,
            1 => ColumnType::Integer,
            2 => {
                let n = r.u32("dictionary length")? as usize;
                if n.saturating_mul(4) > r.remaining() {
                    return Err(PersistError::Truncated { context: "dictionary" });
                }
                let dict = (0..n).map(|_| r.str("dictionary entry")).collect::<Result<_, _>>()?;
                ColumnType::Categorical(dict)
            }
            _ => return Err(PersistError::Invalid { context: "unknown column type tag" }),
        };
        let bounds = get_interval(r)?;
        let len = bounds.length();
        if len.is_nan() || len <= 0.0 {
            return Err(PersistError::Invalid { context: "column bounds are empty" });
        }
        columns.push(ColumnMeta { name, ty, bounds });
    }
    Ok(Domain::new(columns))
}

fn put_config(out: &mut Vec<u8>, c: &QuickSelConfig) {
    out.put_f64(c.lambda);
    out.put_f64(c.ridge_rel);
    out.put_usize(c.points_per_query);
    out.put_usize(c.subpops_per_query);
    out.put_usize(c.max_subpops);
    out.put_usize(c.size_neighbors);
    out.put_f64(c.overlap_factor);
    match c.refine_policy {
        RefinePolicy::EveryQuery => out.put_u32(0),
        RefinePolicy::EveryK(k) => {
            out.put_u32(1);
            out.put_usize(k);
        }
        RefinePolicy::Manual => out.put_u32(2),
    }
    match c.training {
        TrainingMethod::AnalyticPenalty => out.put_u32(0),
        TrainingMethod::StandardQp => out.put_u32(1),
    }
    out.put_u64(c.seed);
    out.put_usize(c.warm_refine_limit);
    out.put_usize(c.max_history);
    out.put_f64(c.drift_ratio);
    out.put_usize(c.drift_patience);
}

fn get_config(r: &mut Reader<'_>, version: u16) -> Result<QuickSelConfig, PersistError> {
    let lambda = r.f64("lambda")?;
    let ridge_rel = r.f64("ridge_rel")?;
    let points_per_query = r.usize("points_per_query")?;
    let subpops_per_query = r.usize("subpops_per_query")?;
    let max_subpops = r.usize("max_subpops")?;
    let size_neighbors = r.usize("size_neighbors")?;
    let overlap_factor = r.f64("overlap_factor")?;
    let refine_policy = match r.u32("refine policy tag")? {
        0 => RefinePolicy::EveryQuery,
        1 => RefinePolicy::EveryK(r.usize("refine k")?),
        2 => RefinePolicy::Manual,
        _ => return Err(PersistError::Invalid { context: "unknown refine policy tag" }),
    };
    let training = match r.u32("training tag")? {
        0 => TrainingMethod::AnalyticPenalty,
        1 => TrainingMethod::StandardQp,
        _ => return Err(PersistError::Invalid { context: "unknown training method tag" }),
    };
    let seed = r.u64("seed")?;
    let warm_refine_limit = r.usize("warm_refine_limit")?;
    // v1 predates bounded history and drift detection: restore those
    // knobs to values that reproduce v1 behaviour exactly (unbounded
    // history; drift defaults match what a default-configured v1
    // estimator now gets on upgrade).
    let defaults = QuickSelConfig::default();
    let (max_history, drift_ratio, drift_patience) = if version >= 2 {
        (r.usize("max_history")?, r.f64("drift_ratio")?, r.usize("drift_patience")?)
    } else {
        (usize::MAX, defaults.drift_ratio, defaults.drift_patience)
    };
    Ok(QuickSelConfig {
        lambda,
        ridge_rel,
        points_per_query,
        subpops_per_query,
        max_subpops,
        size_neighbors,
        overlap_factor,
        refine_policy,
        training,
        seed,
        warm_refine_limit,
        max_history,
        drift_ratio,
        drift_patience,
    })
}

fn put_matrix(out: &mut Vec<u8>, m: &DMatrix) {
    out.put_usize(m.rows());
    out.put_usize(m.cols());
    for &v in m.as_slice() {
        out.put_f64(v);
    }
}

fn get_matrix(r: &mut Reader<'_>) -> Result<DMatrix, PersistError> {
    let rows = r.usize("matrix rows")?;
    let cols = r.usize("matrix cols")?;
    let n = rows
        .checked_mul(cols)
        .ok_or(PersistError::Invalid { context: "matrix shape overflows" })?;
    if n.saturating_mul(8) > r.remaining() {
        return Err(PersistError::Truncated { context: "matrix data" });
    }
    let data = (0..n).map(|_| r.f64("matrix entry")).collect::<Result<Vec<_>, _>>()?;
    Ok(DMatrix::from_vec(rows, cols, data))
}

fn put_f64s(out: &mut Vec<u8>, xs: &[f64]) {
    out.put_usize(xs.len());
    for &v in xs {
        out.put_f64(v);
    }
}

fn get_f64s(r: &mut Reader<'_>, context: &'static str) -> Result<Vec<f64>, PersistError> {
    let n = r.bounded_len(8, context)?;
    (0..n).map(|_| r.f64(context)).collect()
}

fn put_trainer(out: &mut Vec<u8>, t: &TrainerState) {
    out.put_usize(t.subpops.len());
    for rect in &t.subpops {
        encode_rect(out, rect);
    }
    put_matrix(out, &t.q);
    put_matrix(out, &t.a);
    put_f64s(out, &t.s);
    put_matrix(out, &t.gram);
    put_f64s(out, &t.ats);
    put_matrix(out, &t.factor_lower);
    out.put_f64(t.solver_scale);
    put_f64s(out, &t.pending_rows);
    put_f64s(out, &t.pending_solved);
    out.put_usize(t.pending_rank);
    out.put_f64(t.lambda);
    out.put_f64(t.ridge_abs);
    out.put_usize(t.warm_refines);
    put_f64s(out, &t.pending_signs);
}

fn get_trainer(r: &mut Reader<'_>, version: u16) -> Result<TrainerState, PersistError> {
    let m = r.bounded_len(4, "subpop count")?;
    let subpops = (0..m).map(|_| decode_rect(r)).collect::<Result<Vec<_>, _>>()?;
    let q = get_matrix(r)?;
    let a = get_matrix(r)?;
    let s = get_f64s(r, "selectivity vector")?;
    let gram = get_matrix(r)?;
    let ats = get_f64s(r, "ats vector")?;
    let factor_lower = get_matrix(r)?;
    let solver_scale = r.f64("solver scale")?;
    let pending_rows = get_f64s(r, "pending rows")?;
    let pending_solved = get_f64s(r, "pending solves")?;
    let pending_rank = r.usize("pending rank")?;
    let lambda = r.f64("trainer lambda")?;
    let ridge_abs = r.f64("trainer ridge")?;
    let warm_refines = r.usize("warm refines")?;
    // v1 pending rows were always fold-ins; signs restore all-positive.
    let pending_signs =
        if version >= 2 { get_f64s(r, "pending signs")? } else { vec![1.0; pending_rank] };
    Ok(TrainerState {
        subpops,
        q,
        a,
        s,
        gram,
        ats,
        factor_lower,
        solver_scale,
        pending_rows,
        pending_solved,
        pending_rank,
        lambda,
        ridge_abs,
        warm_refines,
        pending_signs,
    })
}

/// Serializes a [`QuickSelState`] capture into a sectioned, checksummed
/// container ([`STATE_MAGIC`] / [`STATE_VERSION`]).
pub fn encode_state(state: &QuickSelState) -> Vec<u8> {
    let mut domain = Vec::new();
    encode_domain(&mut domain, &state.domain);

    let mut config = Vec::new();
    put_config(&mut config, &state.config);

    let mut queries = Vec::new();
    queries.put_usize(state.queries.len());
    for q in &state.queries {
        q.encode_into(&mut queries);
    }

    let mut points = Vec::new();
    points.put_usize(state.point_pool.len());
    for p in &state.point_pool {
        put_f64s(&mut points, p);
    }

    let mut model = Vec::new();
    match &state.model {
        None => model.put_u32(0),
        Some((rects, weights)) => {
            model.put_u32(1);
            model.put_usize(rects.len());
            for rect in rects {
                encode_rect(&mut model, rect);
            }
            put_f64s(&mut model, weights);
        }
    }

    let mut misc = Vec::new();
    for w in state.rng_state {
        misc.put_u64(w);
    }
    misc.put_usize(state.pending_since_refine);
    misc.put_u64(state.version);
    // v2 additions: history-compaction bookkeeping and drift-detector
    // state, appended so the v1 prefix layout is untouched.
    misc.put_u64(state.evicted_total);
    misc.put_u64(state.drift_resamples);
    misc.put_usize(state.compacted_len);
    misc.put_usize(state.compact_counts.len());
    for &c in &state.compact_counts {
        misc.put_u64(c);
    }
    misc.put_usize(state.point_counts.len());
    for &c in &state.point_counts {
        misc.put_u32(c);
    }
    misc.put_f64(state.violation_ewma);
    misc.put_u32(state.drift_strikes);
    misc.put_u32(u32::from(state.force_cold));
    misc.put_u32(u32::from(state.history_dirty));

    let trainer = state.trainer.as_ref().map(|t| {
        let mut buf = Vec::new();
        put_trainer(&mut buf, t);
        buf
    });

    let mut sections: Vec<([u8; 4], &[u8])> = vec![
        (SEC_DOMAIN, &domain),
        (SEC_CONFIG, &config),
        (SEC_QUERIES, &queries),
        (SEC_POINTS, &points),
        (SEC_MODEL, &model),
        (SEC_MISC, &misc),
    ];
    if let Some(t) = &trainer {
        sections.push((SEC_TRAINER, t));
    }
    write_container(STATE_MAGIC, STATE_VERSION, &sections)
}

/// Parses an estimator-state container back into a [`QuickSelState`].
/// Structural failures (bad magic, version skew, checksum mismatch,
/// truncation) surface as their specific [`PersistError`] variants.
pub fn decode_state(bytes: &[u8]) -> Result<QuickSelState, PersistError> {
    let c = Container::open(STATE_MAGIC, STATE_VERSION, bytes)?;
    let version = c.version();

    let mut r = Reader::new(c.section(SEC_DOMAIN)?);
    let domain = decode_domain(&mut r)?;

    let mut r = Reader::new(c.section(SEC_CONFIG)?);
    let config = get_config(&mut r, version)?;

    let mut r = Reader::new(c.section(SEC_QUERIES)?);
    let n = r.bounded_len(12, "query count")?;
    let mut queries = Vec::with_capacity(n);
    for _ in 0..n {
        let rect = decode_rect(&mut r)?;
        let selectivity = r.f64("query selectivity")?;
        queries.push(ObservedQuery { rect, selectivity });
    }

    let mut r = Reader::new(c.section(SEC_POINTS)?);
    let n = r.bounded_len(8, "point count")?;
    let point_pool =
        (0..n).map(|_| get_f64s(&mut r, "point coordinates")).collect::<Result<Vec<_>, _>>()?;

    let mut r = Reader::new(c.section(SEC_MODEL)?);
    let model = match r.u32("model presence tag")? {
        0 => None,
        1 => {
            let m = r.bounded_len(4, "model support count")?;
            let rects = (0..m).map(|_| decode_rect(&mut r)).collect::<Result<Vec<_>, _>>()?;
            let weights = get_f64s(&mut r, "model weights")?;
            Some((rects, weights))
        }
        _ => return Err(PersistError::Invalid { context: "unknown model presence tag" }),
    };

    let mut r = Reader::new(c.section(SEC_MISC)?);
    let mut rng_state = [0u64; 4];
    for w in &mut rng_state {
        *w = r.u64("rng state word")?;
    }
    let pending_since_refine = r.usize("pending_since_refine")?;
    let training_version = r.u64("training version")?;

    let (
        evicted_total,
        drift_resamples,
        compacted_len,
        compact_counts,
        point_counts,
        violation_ewma,
        drift_strikes,
        force_cold,
        history_dirty,
    ) = if version >= 2 {
        let evicted_total = r.u64("evicted_total")?;
        let drift_resamples = r.u64("drift_resamples")?;
        let compacted_len = r.usize("compacted_len")?;
        let n = r.bounded_len(8, "compact counts")?;
        let compact_counts =
            (0..n).map(|_| r.u64("compact count")).collect::<Result<Vec<_>, _>>()?;
        let n = r.bounded_len(4, "point counts")?;
        let point_counts = (0..n).map(|_| r.u32("point count")).collect::<Result<Vec<_>, _>>()?;
        let violation_ewma = r.f64("violation_ewma")?;
        let drift_strikes = r.u32("drift_strikes")?;
        let force_cold = r.u32("force_cold")? != 0;
        let history_dirty = r.u32("history_dirty")? != 0;
        (
            evicted_total,
            drift_resamples,
            compacted_len,
            compact_counts,
            point_counts,
            violation_ewma,
            drift_strikes,
            force_cold,
            history_dirty,
        )
    } else {
        // v1 captures had no per-query point counts; reconstruct them
        // from the generation rule (`points_per_query` workload points
        // per observation, none inside a zero-volume predicate) and
        // check the reconstruction against the serialized pool.
        let point_counts: Vec<u32> = queries
            .iter()
            .map(|q| if q.rect.is_empty() { 0 } else { config.points_per_query as u32 })
            .collect();
        let total: u64 = point_counts.iter().map(|&c| u64::from(c)).sum();
        if total != point_pool.len() as u64 {
            return Err(PersistError::Invalid {
                context: "v1 point pool inconsistent with points-per-query",
            });
        }
        (0, 0, 0, Vec::new(), point_counts, f64::NAN, 0, false, false)
    };

    let trainer = match c.section_opt(SEC_TRAINER)? {
        None => None,
        Some(bytes) => Some(get_trainer(&mut Reader::new(bytes), version)?),
    };

    Ok(QuickSelState {
        domain,
        config,
        queries,
        point_pool,
        point_counts,
        compacted_len,
        compact_counts,
        evicted_total,
        drift_resamples,
        violation_ewma,
        drift_strikes,
        force_cold,
        history_dirty,
        model,
        rng_state,
        pending_since_refine,
        version: training_version,
        trainer,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_codec_round_trips_all_column_types() {
        let domain = Domain::new(vec![
            ColumnMeta {
                name: "price".into(),
                ty: ColumnType::Real,
                bounds: Interval::new(-1.5, 99.25),
            },
            ColumnMeta {
                name: "year".into(),
                ty: ColumnType::Integer,
                bounds: Interval::new(1990.0, 2031.0),
            },
            ColumnMeta {
                name: "state".into(),
                ty: ColumnType::Categorical(vec!["CA".into(), "MI".into()]),
                bounds: Interval::new(0.0, 2.0),
            },
        ]);
        let mut buf = Vec::new();
        encode_domain(&mut buf, &domain);
        let decoded = decode_domain(&mut Reader::new(&buf)).unwrap();
        assert_eq!(decoded, domain);
    }

    #[test]
    fn empty_or_degenerate_domains_reject_with_typed_errors() {
        let mut buf = Vec::new();
        buf.put_u32(0); // zero columns
        assert!(matches!(decode_domain(&mut Reader::new(&buf)), Err(PersistError::Invalid { .. })));

        // One column with empty bounds: Domain::new would panic; the
        // decoder must reject first.
        let mut buf = Vec::new();
        buf.put_u32(1);
        buf.put_str("x");
        buf.put_u32(0);
        put_interval(&mut buf, &Interval::new(3.0, 3.0));
        assert!(matches!(decode_domain(&mut Reader::new(&buf)), Err(PersistError::Invalid { .. })));
    }
}
