//! Regression: `driver::score` (one batched `estimate_many` over the
//! whole workload, one model freeze) must produce *identical* error
//! statistics to scoring the same estimator with per-rect scalar
//! `estimate` calls — batching changes the time, never the numbers.

use quicksel_bench::driver::{evaluate, score};
use quicksel_core::{QuickSel, RefinePolicy};
use quicksel_data::{ErrorStats, Estimate, Learn, ObservedQuery};
use quicksel_geometry::{Domain, Rect};

fn workload(n: usize, phase: usize) -> Vec<ObservedQuery> {
    (0..n)
        .map(|i| {
            let lo = ((i * 3 + phase) % 7) as f64;
            let rect = Rect::from_bounds(&[(lo, lo + 2.5), ((i % 5) as f64, (i % 5 + 3) as f64)]);
            ObservedQuery::new(rect, 0.1 + ((i + phase) % 8) as f64 * 0.1)
        })
        .collect()
}

fn scalar_score(est: &dyn Estimate, test: &[ObservedQuery]) -> ErrorStats {
    let pairs: Vec<(f64, f64)> =
        test.iter().map(|q| (q.selectivity, est.estimate(&q.rect))).collect();
    ErrorStats::from_pairs(&pairs)
}

fn assert_stats_identical(batched: &ErrorStats, scalar: &ErrorStats) {
    assert_eq!(batched.count, scalar.count);
    assert_eq!(batched.mean_rel_pct, scalar.mean_rel_pct, "mean relative error diverged");
    assert_eq!(batched.mean_abs, scalar.mean_abs, "mean absolute error diverged");
    assert_eq!(batched.max_rel_pct, scalar.max_rel_pct, "max relative error diverged");
}

#[test]
fn driver_scores_identical_scalar_vs_batched() {
    let domain = Domain::of_reals(&[("x", 0.0, 10.0), ("y", 0.0, 10.0)]);
    let mut qs = QuickSel::builder(domain).refine_policy(RefinePolicy::Manual).seed(5).build();
    qs.observe_batch(&workload(30, 0));
    qs.refine().expect("training failed");
    let test = workload(50, 3);

    let batched = score(&qs, &test);
    assert_eq!(batched.count, test.len());
    assert_stats_identical(&batched, &scalar_score(&qs, &test));

    // The frozen snapshot scores identically too (one pre-frozen pass).
    let snap = qs.snapshot();
    assert_stats_identical(&score(&snap, &test), &scalar_score(&qs, &test));

    // The back-compat alias is the same function.
    assert_stats_identical(&evaluate(&qs, &test), &batched);
}

#[test]
fn untrained_estimator_scores_identical_too() {
    let domain = Domain::of_reals(&[("x", 0.0, 10.0), ("y", 0.0, 10.0)]);
    let qs = QuickSel::new(domain);
    let test = workload(40, 1);
    assert_stats_identical(&score(&qs, &test), &scalar_score(&qs, &test));
    let empty = score(&qs, &[]);
    assert_eq!(empty.count, 0);
}
