//! Training-path throughput: cold retrain + warm incremental refine,
//! naive vs optimized, with machine-readable JSON output.
//!
//! ```sh
//! cargo bench -p quicksel-bench --bench train_throughput
//! ```
//!
//! Measures one full model refinement at the paper's subpopulation
//! budgets, three ways:
//!
//! * **cold naive** — the pre-optimization path: full-sort k-NN sizing
//!   (`size_subpopulations_reference`), all-pairs `build_qp` through
//!   per-element `set`, dense Gram, and the reference unblocked Cholesky
//!   with its strided backward sweep.
//! * **cold optimized** — grid-accelerated sizing, grid-pruned SoA
//!   assembly (`SubpopGrid`), blocked Cholesky (`IncrementalTrainer::cold`).
//! * **warm incremental** — `IncrementalTrainer::refine` folding a small
//!   query delta into the cached system as a rank-k update (subpops
//!   unchanged), against the naive path's only option of a full cold
//!   rebuild.
//!
//! Before timing, the bench asserts the pruned assembly equals the naive
//! assembly (≤1e-12) and that warm weights match a from-scratch rebuild,
//! so the speedups compare *equivalent* computations.
//!
//! A JSON document is written to
//! `target/bench-results/train_throughput.json` (override with
//! `TRAIN_BENCH_OUT=...`), same convention as `batched_estimate`,
//! including the m=4000 cold and warm headline speedups the README and
//! acceptance criteria quote.

use quicksel_core::subpop::{size_subpopulations_reference, workload_points};
use quicksel_core::train::{build_qp, IncrementalTrainer};
use quicksel_core::SubpopGrid;
use quicksel_data::datasets::gaussian::gaussian_table;
use quicksel_data::workload::{CenterMode, QueryGenerator, RectWorkload, ShiftMode};
use quicksel_data::ObservedQuery;
use quicksel_geometry::{Domain, Rect};
use quicksel_linalg::CholeskyFactor;
use rand::SeedableRng;
use std::time::Instant;

const LAMBDA: f64 = 1e6;
const RIDGE_REL: f64 = quicksel_linalg::qp::DEFAULT_RIDGE_REL;
/// Queries folded in per warm refine ("small query delta").
const WARM_DELTA: usize = 16;
/// Subpopulation budgets measured; 4000 is the paper cap and the
/// acceptance headline.
const BUDGETS: [usize; 2] = [1000, 4000];

struct Workload {
    domain: Domain,
    queries: Vec<ObservedQuery>,
    pool: Vec<Vec<f64>>,
}

/// Gaussian table + workload sized so `m = min(4n, 4000)` hits `m`
/// exactly, plus `WARM_DELTA` extra queries for the warm phase.
fn workload(m: usize) -> Workload {
    let n = m / 4;
    let table = gaussian_table(3, 0.5, 20_000, 7171);
    let mut gen =
        RectWorkload::new(table.domain().clone(), 7172, ShiftMode::Random, CenterMode::DataRow)
            .with_width_frac(0.1, 0.4);
    let queries = gen.take_queries(&table, n + WARM_DELTA);
    let mut rng = rand::rngs::StdRng::seed_from_u64(7173);
    let mut pool = Vec::new();
    for q in &queries[..n] {
        pool.extend(workload_points(&q.rect, 10, &mut rng));
    }
    Workload { domain: table.domain().clone(), queries, pool }
}

/// §3.3 centers for the budget (shared by both paths so sizing is the
/// only differing step).
fn centers(w: &Workload, m: usize) -> Vec<Vec<f64>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7174);
    quicksel_core::subpop::sample_centers(&w.pool, m, &mut rng)
}

/// The pre-optimization cold retrain, end to end: reference sizing,
/// naive all-pairs assembly, dense Gram, reference Cholesky solve.
fn cold_naive(w: &Workload, centers: &[Vec<f64>], n: usize) -> (Vec<Rect>, Vec<f64>, f64) {
    let subpops = size_subpopulations_reference(&w.domain, centers, 10, 1.2);
    let qp = build_qp(&w.domain, &subpops, &w.queries[..n]);
    // solve_analytic as it was before blocked Cholesky: same algebra,
    // reference factorization + reference substitution.
    let gram = qp.a.gram();
    let mut system = qp.q.clone();
    system.add_scaled(LAMBDA, &gram);
    let m = qp.num_params().max(1);
    system.add_diagonal(system.trace() / m as f64 * RIDGE_REL);
    let mut rhs = qp.a.t_matvec(&qp.s);
    for v in &mut rhs {
        *v *= LAMBDA;
    }
    let weights =
        CholeskyFactor::new_reference(&system).expect("ridged system is SPD").solve_reference(&rhs);
    let violation = qp.constraint_violation(&weights);
    (subpops, weights, violation)
}

/// The optimized cold retrain (grid sizing + pruned assembly + blocked
/// factor), returning the trainer for the warm phase.
fn cold_optimized(w: &Workload, centers: &[Vec<f64>], n: usize) -> (IncrementalTrainer, Vec<f64>) {
    let subpops = quicksel_core::subpop::size_subpopulations(&w.domain, centers, 10, 1.2);
    let (trainer, model, _) =
        IncrementalTrainer::cold(&w.domain, subpops, &w.queries[..n], LAMBDA, RIDGE_REL)
            .expect("cold train");
    let weights = model.weights().to_vec();
    (trainer, weights)
}

fn median_secs(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

fn main() {
    println!("train_throughput: naive vs pruned-SoA + blocked-Cholesky + incremental refine");
    let mut lines = Vec::new();
    let mut headline_cold = 0.0;
    let mut headline_warm = 0.0;

    for &m in &BUDGETS {
        let n = m / 4;
        let w = workload(m);
        let cs = centers(&w, m);
        assert_eq!(cs.len(), m, "pool must saturate the budget");

        // --- Correctness gates before any timing. ---
        // 1. Pruned assembly equals naive assembly on these subpops.
        let ref_subpops = size_subpopulations_reference(&w.domain, &cs, 10, 1.2);
        let fast_subpops = quicksel_core::subpop::size_subpopulations(&w.domain, &cs, 10, 1.2);
        for (a, b) in ref_subpops.iter().zip(&fast_subpops) {
            assert_eq!(format!("{a}"), format!("{b}"), "sizing paths diverged");
        }
        let probe_n = n.min(64); // full QP equivalence is O(n·m); sample it
        let naive_qp = build_qp(&w.domain, &ref_subpops, &w.queries[..probe_n]);
        let pruned_qp = SubpopGrid::new(&ref_subpops).assemble_qp(&w.queries[..probe_n]);
        assert!(naive_qp.q.max_abs_diff(&pruned_qp.q) <= 1e-12, "Q diverged");
        assert!(naive_qp.a.max_abs_diff(&pruned_qp.a) <= 1e-12, "A diverged");

        // --- Cold naive (seconds at m=4000: measure once). ---
        let t = Instant::now();
        let (_, naive_weights, naive_violation) = cold_naive(&w, &cs, n);
        let cold_naive_s = t.elapsed().as_secs_f64();

        // --- Cold optimized (median of 3). ---
        let mut cold_samples = Vec::new();
        let mut kept: Option<(IncrementalTrainer, Vec<f64>)> = None;
        for _ in 0..3 {
            let t = Instant::now();
            let out = cold_optimized(&w, &cs, n);
            cold_samples.push(t.elapsed().as_secs_f64());
            kept = Some(out);
        }
        let cold_s = median_secs(cold_samples);
        let (trainer, cold_weights) = kept.expect("measured at least once");

        // 2. Optimized cold weights agree with the naive solve (same
        //    system up to blocked-vs-reference fp reassociation).
        let wscale = naive_weights.iter().fold(1e-9f64, |a, w| a.max(w.abs()));
        for (a, b) in naive_weights.iter().zip(&cold_weights) {
            assert!((a - b).abs() <= 1e-6 * wscale.max(1.0), "cold weights diverged: {a} vs {b}");
        }

        // --- Warm incremental refine (median of 3, fresh clone each). ---
        let delta = &w.queries[n..n + WARM_DELTA];
        let mut warm_samples = Vec::new();
        let mut warm_weights = Vec::new();
        for _ in 0..3 {
            let mut fresh = trainer.clone();
            let t = Instant::now();
            let (model, report) = fresh.refine(delta).expect("warm refine");
            warm_samples.push(t.elapsed().as_secs_f64());
            assert!(report.assembly_reused, "warm path did not fire");
            assert_eq!(report.rows_appended, WARM_DELTA);
            warm_weights = model.weights().to_vec();
        }
        let warm_s = median_secs(warm_samples);

        // 3. Warm weights match a from-scratch rebuild over all n+Δ
        //    queries with the same subpops.
        let scratch = {
            let (_, model, _) = IncrementalTrainer::cold(
                &w.domain,
                trainer.subpops().to_vec(),
                &w.queries[..n + WARM_DELTA],
                LAMBDA,
                RIDGE_REL,
            )
            .expect("scratch rebuild");
            model.weights().to_vec()
        };
        let sscale = scratch.iter().fold(1e-9f64, |a, w| a.max(w.abs()));
        for (a, b) in warm_weights.iter().zip(&scratch) {
            assert!(
                (a - b).abs() <= 1e-4 * sscale.max(1.0),
                "warm weights diverged from scratch: {a} vs {b}"
            );
        }

        // The naive path's answer to the same warm delta is a full cold
        // rebuild — that is the warm baseline.
        let cold_speedup = cold_naive_s / cold_s;
        let warm_speedup = cold_naive_s / warm_s;
        if m == 4000 {
            headline_cold = cold_speedup;
            headline_warm = warm_speedup;
        }
        println!(
            "  m={m:>4} n={n:>4}: cold naive {:>8.1} ms | cold {:>8.1} ms ({cold_speedup:.2}x) | warm Δ={WARM_DELTA} {:>7.2} ms ({warm_speedup:.1}x) | violation {naive_violation:.2e}",
            cold_naive_s * 1e3,
            cold_s * 1e3,
            warm_s * 1e3,
        );
        lines.push(format!(
            "{{\"subpops\":{m},\"constraints\":{},\"cold_naive_ms\":{:.3},\"cold_ms\":{:.3},\"warm_rows\":{WARM_DELTA},\"warm_ms\":{:.3},\"cold_speedup\":{cold_speedup:.3},\"warm_speedup\":{warm_speedup:.3}}}",
            n + 1,
            cold_naive_s * 1e3,
            cold_s * 1e3,
            warm_s * 1e3,
        ));
    }

    println!("  headline (m=4000): cold {headline_cold:.2}x, warm incremental {headline_warm:.1}x");
    let json = format!(
        "{{\"bench\":\"train_throughput\",\"meta\":{},\"lambda\":{LAMBDA:e},\"grid\":[{}],\"headline_cold_speedup_m4000\":{headline_cold:.3},\"headline_warm_speedup_m4000\":{headline_warm:.3}}}",
        quicksel_bench::host_meta_json(),
        lines.join(",")
    );
    println!("{json}");

    let out = std::env::var("TRAIN_BENCH_OUT")
        .unwrap_or_else(|_| "target/bench-results/train_throughput.json".into());
    if let Some(parent) = std::path::Path::new(&out).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match std::fs::write(&out, format!("{json}\n")) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => eprintln!("could not write {out}: {e}"),
    }
}
