//! Serving-layer throughput bench: sharded ingest scaling and the cached
//! vs uncached read path, with machine-readable JSON output.
//!
//! ```sh
//! cargo bench -p quicksel-bench --bench registry_throughput
//! ```
//!
//! Two measurements:
//!
//! * **Ingest** — the same feedback workload pushed through a
//!   `ShardedService` at 1/2/4/8 shards, one writer thread per shard.
//!   More shards ⇒ less writer-mutex contention *and* smaller per-shard
//!   training sets (QuickSel retrain cost grows with observed count), so
//!   throughput should rise with the shard count.
//! * **Read** — repeated planner probes against a trained registry:
//!   uncached (`EstimatorRegistry::estimate`, an `ArcCell` load per
//!   probe) vs the per-thread `CachedProvider` (version check only at a
//!   stable model).
//!
//! Results are printed human-readably, and a JSON document is written to
//! `target/bench-results/registry_throughput.json` — relative to the
//! bench's working directory, i.e. `crates/bench/` when run through
//! `cargo bench`; override the path with `REGISTRY_BENCH_OUT=...` — so
//! successive runs can be tracked.

use quicksel_core::{QuickSel, RefinePolicy};
use quicksel_data::ObservedQuery;
use quicksel_geometry::{Domain, Predicate, Rect};
use quicksel_service::{CachedProvider, CardinalityProvider, EstimatorRegistry, ShardedService};
use std::sync::Arc;
use std::time::Instant;

const INGEST_QUERIES: usize = 192;
const INGEST_BATCH: usize = 4;
const READ_PROBES: usize = 200_000;

fn domain() -> Domain {
    Domain::of_reals(&[("x", 0.0, 10.0), ("y", 0.0, 10.0)])
}

fn workload(n: usize) -> Vec<ObservedQuery> {
    (0..n)
        .map(|i| {
            let lo = (i % 31) as f64 * 0.28;
            let w = 0.6 + (i % 17) as f64 * 0.25;
            let rect = Rect::from_bounds(&[(lo, (lo + w).min(10.0)), (0.0, (i % 9 + 1) as f64)]);
            ObservedQuery::new(rect, 0.05 + (i % 9) as f64 * 0.1)
        })
        .collect()
}

fn sharded(shards: usize) -> Arc<ShardedService<QuickSel>> {
    let d = domain();
    Arc::new(ShardedService::new(d.clone(), shards, |i| {
        QuickSel::builder(d.clone())
            .refine_policy(RefinePolicy::Manual)
            .fixed_subpops(64)
            .seed(i as u64)
            .build()
    }))
}

/// Ingest the whole workload with one writer per shard, fanned out on a
/// shard-sized workspace pool; returns (elapsed seconds, queries
/// ingested).
fn bench_ingest(shards: usize) -> (f64, u64) {
    let svc = sharded(shards);
    let feedback = workload(INGEST_QUERIES);
    let parts = svc.partition_batch(&feedback);
    let pool = quicksel_parallel::ThreadPool::new(shards);
    let start = Instant::now();
    pool.scope(|scope| {
        for (i, part) in parts.iter().enumerate() {
            let svc = Arc::clone(&svc);
            scope.spawn(move || {
                for batch in part.chunks(INGEST_BATCH.max(1)) {
                    svc.shard(i).observe_batch(batch).expect("ingest failed");
                }
            });
        }
    });
    let secs = start.elapsed().as_secs_f64();
    let ingested = svc.stats().total.queries_ingested;
    assert_eq!(ingested, feedback.len() as u64, "bench lost feedback");
    (secs, ingested)
}

/// Times `READ_PROBES` estimates through `f`; returns ns/op.
fn bench_reads(mut f: impl FnMut(&Predicate) -> f64) -> f64 {
    let probes: Vec<Predicate> = (0..64)
        .map(|i| {
            let lo = (i % 8) as f64;
            Predicate::new().range(0, lo, lo + 1.5).range(1, 0.5, 4.5)
        })
        .collect();
    let start = Instant::now();
    let mut acc = 0.0;
    for i in 0..READ_PROBES {
        acc += f(&probes[i % probes.len()]);
    }
    std::hint::black_box(acc);
    start.elapsed().as_secs_f64() * 1e9 / READ_PROBES as f64
}

fn main() {
    let mut shard_lines = Vec::new();
    println!("registry_throughput: ingest scaling (one writer per shard)");
    for shards in [1usize, 2, 4, 8] {
        let (secs, ingested) = bench_ingest(shards);
        let per_sec = ingested as f64 / secs;
        println!("  shards={shards}: {ingested} queries in {secs:.3}s -> {per_sec:.0} q/s");
        shard_lines.push(format!(
            "{{\"shards\":{shards},\"queries\":{ingested},\"secs\":{secs:.6},\"queries_per_sec\":{per_sec:.1}}}"
        ));
    }

    // Read path: one trained table behind the registry.
    let registry: Arc<EstimatorRegistry<QuickSel>> = Arc::new(EstimatorRegistry::new());
    registry.register("t", sharded(4));
    let t = "t".into();
    registry.observe_batch(&t, &workload(64));
    let uncached_ns = bench_reads(|p| registry.estimate(&t, p));
    let cached_provider = CachedProvider::new(Arc::clone(&registry));
    let cached_ns = bench_reads(|p| cached_provider.estimate(&t, p));
    let hit_rate = cached_provider.cache_hits() as f64
        / (cached_provider.cache_hits() + cached_provider.cache_misses()).max(1) as f64;
    println!("registry_throughput: read path (4 shards, trained)");
    println!("  uncached registry.estimate: {uncached_ns:.1} ns/op");
    println!("  cached   provider.estimate: {cached_ns:.1} ns/op (hit rate {:.4})", hit_rate);

    let json = format!(
        "{{\"bench\":\"registry_throughput\",\"ingest\":[{}],\"read\":{{\"probes\":{},\"uncached_ns_per_op\":{:.2},\"cached_ns_per_op\":{:.2},\"cache_hit_rate\":{:.6}}}}}",
        shard_lines.join(","),
        READ_PROBES,
        uncached_ns,
        cached_ns,
        hit_rate
    );
    println!("{json}");

    let out = std::env::var("REGISTRY_BENCH_OUT")
        .unwrap_or_else(|_| "target/bench-results/registry_throughput.json".into());
    if let Some(parent) = std::path::Path::new(&out).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match std::fs::write(&out, format!("{json}\n")) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => eprintln!("could not write {out}: {e}"),
    }
}
