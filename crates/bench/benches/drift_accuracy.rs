//! Accuracy under data drift with a bounded feedback history.
//!
//! ```sh
//! cargo bench -p quicksel-bench --bench drift_accuracy
//! ```
//!
//! Runs the §5.3 Gaussian-drift timeline
//! ([`GaussianDrift`](quicksel_data::drift::GaussianDrift): correlation
//! rises by `rho_step` per phase) against two QuickSel estimators fed
//! identical feedback:
//!
//! * **unbounded** — the historic configuration: every observation
//!   retained forever;
//! * **bounded** — `max_history` capped, with drift detection armed
//!   (`drift_patience` strikes on the constraint-violation trend force
//!   a cold resample against the shifted workload).
//!
//! Reported per phase: mean absolute estimation error for both
//! estimators (the accuracy-under-drift curve), plus the bounded run's
//! peak history length, evictions, and drift-triggered resamples — the
//! memory-bound story next to the accuracy one.
//!
//! A JSON document is written to
//! `target/bench-results/drift_accuracy.json` (override with
//! `DRIFT_BENCH_OUT=...`), same convention as the other benches, with
//! the host fingerprint under `"meta"`. Environment knobs shrink the
//! timeline for CI smoke runs: `DRIFT_PHASES`, `DRIFT_QUERIES_PER_PHASE`,
//! `DRIFT_INITIAL_ROWS`, `DRIFT_BATCH_ROWS`, `DRIFT_BUDGET`,
//! `DRIFT_SUBPOPS`.

use quicksel_core::QuickSel;
use quicksel_data::drift::{DriftEvent, GaussianDrift};
use quicksel_data::{Estimate, Learn, ObservedQuery};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

struct Tracked {
    est: QuickSel,
    phase_abs_err: Vec<f64>,
    peak_history: usize,
}

impl Tracked {
    fn new(est: QuickSel) -> Self {
        Self { est, phase_abs_err: Vec::new(), peak_history: 0 }
    }

    fn note_history(&mut self) {
        self.peak_history = self.peak_history.max(self.est.history_len());
    }
}

fn main() {
    let phases = env_usize("DRIFT_PHASES", 8);
    let queries_per_phase = env_usize("DRIFT_QUERIES_PER_PHASE", 60);
    let initial_rows = env_usize("DRIFT_INITIAL_ROWS", 20_000);
    let batch_rows = env_usize("DRIFT_BATCH_ROWS", 5_000);
    let budget = env_usize("DRIFT_BUDGET", 120);
    let subpops = env_usize("DRIFT_SUBPOPS", 256);

    let drift = GaussianDrift {
        initial_rows,
        batch_rows,
        queries_per_phase,
        phases,
        rho_step: 0.1,
        seed: 1802,
    };
    println!(
        "drift_accuracy: {phases} phases x {queries_per_phase} queries, \
         {initial_rows}+{batch_rows}/phase rows, budget {budget}, m={subpops}"
    );

    let mut table = drift.initial_table();
    let domain = table.domain().clone();
    let build = |max_history: usize| {
        QuickSel::builder(domain.clone())
            .fixed_subpops(subpops)
            .seed(91)
            .max_history(max_history)
            .drift_patience(2)
            .build()
    };
    let mut unbounded = Tracked::new(build(usize::MAX));
    let mut bounded = Tracked::new(build(budget));

    let mut phase_err_unbounded = 0.0f64;
    let mut phase_err_bounded = 0.0f64;
    let mut phase_queries = 0usize;
    let flush = |tr_u: &mut Tracked, tr_b: &mut Tracked, eu: f64, eb: f64, n: usize| {
        if n > 0 {
            tr_u.phase_abs_err.push(eu / n as f64);
            tr_b.phase_abs_err.push(eb / n as f64);
        }
    };

    for event in drift.events() {
        match event {
            DriftEvent::Query(rect) => {
                let truth = table.selectivity(&rect);
                phase_err_unbounded += (unbounded.est.estimate(&rect) - truth).abs();
                phase_err_bounded += (bounded.est.estimate(&rect) - truth).abs();
                phase_queries += 1;
                let feedback = ObservedQuery::new(rect, truth);
                unbounded.est.observe(&feedback);
                bounded.est.observe(&feedback);
                unbounded.note_history();
                bounded.note_history();
                if phase_queries == queries_per_phase {
                    flush(
                        &mut unbounded,
                        &mut bounded,
                        phase_err_unbounded,
                        phase_err_bounded,
                        phase_queries,
                    );
                    phase_err_unbounded = 0.0;
                    phase_err_bounded = 0.0;
                    phase_queries = 0;
                }
            }
            DriftEvent::Insert(rows) => {
                for row in &rows {
                    table.push_row(row);
                }
                let n = rows.len();
                unbounded.est.sync_data(&table, n);
                bounded.est.sync_data(&table, n);
            }
        }
    }
    flush(&mut unbounded, &mut bounded, phase_err_unbounded, phase_err_bounded, phase_queries);

    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len().max(1) as f64;
    let phase_json: Vec<String> = unbounded
        .phase_abs_err
        .iter()
        .zip(&bounded.phase_abs_err)
        .enumerate()
        .map(|(p, (eu, eb))| {
            println!("  phase {p}: err unbounded {eu:.4} | bounded {eb:.4}");
            format!("{{\"phase\":{p},\"err_unbounded\":{eu:.6},\"err_bounded\":{eb:.6}}}")
        })
        .collect();

    let mean_u = mean(&unbounded.phase_abs_err);
    let mean_b = mean(&bounded.phase_abs_err);
    println!(
        "  mean err: unbounded {mean_u:.4} | bounded {mean_b:.4} (budget {budget}, \
         peak history {} vs {})",
        bounded.peak_history, unbounded.peak_history
    );
    println!(
        "  bounded: evicted {} rows, {} drift resamples | unbounded: {} drift resamples",
        bounded.est.evicted_rows(),
        bounded.est.drift_resamples(),
        unbounded.est.drift_resamples()
    );

    let json = format!(
        "{{\"bench\":\"drift_accuracy\",\"meta\":{},\"budget\":{budget},\"subpops\":{subpops},\
         \"phases\":[{}],\
         \"mean_err_unbounded\":{mean_u:.6},\"mean_err_bounded\":{mean_b:.6},\
         \"peak_history_unbounded\":{},\"peak_history_bounded\":{},\
         \"evicted_rows\":{},\"drift_resamples_bounded\":{},\"drift_resamples_unbounded\":{}}}",
        quicksel_bench::host_meta_json(),
        phase_json.join(","),
        unbounded.peak_history,
        bounded.peak_history,
        bounded.est.evicted_rows(),
        bounded.est.drift_resamples(),
        unbounded.est.drift_resamples(),
    );
    println!("{json}");

    let out = std::env::var("DRIFT_BENCH_OUT")
        .unwrap_or_else(|_| "target/bench-results/drift_accuracy.json".into());
    if let Some(parent) = std::path::Path::new(&out).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match std::fs::write(&out, format!("{json}\n")) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => eprintln!("could not write {out}: {e}"),
    }
}
