//! Iterative-scaling cost as a function of bucket count — the mechanism
//! behind the paper's Limitation 1: per-sweep cost grows linearly with
//! the number of buckets, and the bucket count itself grows superlinearly
//! with the observed queries.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use quicksel_baselines::Isomer;
use quicksel_data::datasets::gaussian::gaussian_table;
use quicksel_data::workload::{CenterMode, QueryGenerator, RectWorkload, ShiftMode};
use quicksel_data::{Estimate, Learn, ObservedQuery};

fn bench_ipf(c: &mut Criterion) {
    let table = gaussian_table(2, 0.5, 20_000, 1234);
    let mut gen =
        RectWorkload::new(table.domain().clone(), 1235, ShiftMode::Random, CenterMode::DataRow)
            .with_width_frac(0.1, 0.4);
    let queries: Vec<ObservedQuery> = gen.take_queries(&table, 80);

    let mut group = c.benchmark_group("iterative_scaling_observe");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &n in &[20usize, 40, 80] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter_batched(
                || {
                    let mut iso = Isomer::new(table.domain().clone());
                    for q in &queries[..n - 1] {
                        iso.observe(q);
                    }
                    (iso, queries[n - 1].clone())
                },
                |(mut iso, q)| {
                    iso.observe(&q);
                    black_box(iso.param_count())
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ipf);
criterion_main!(benches);
