//! Multicore scaling of the training and estimation hot paths, with
//! machine-readable JSON output.
//!
//! ```sh
//! cargo bench -p quicksel-bench --bench parallel_scale
//! ```
//!
//! Runs the workloads the earlier benches established — cold-train QP
//! assembly at the paper's `m = 4000` cap (`train_throughput`'s
//! workload), the full cold train, and B=4096 batched estimation
//! (`batched_estimate`'s workload) — at thread counts
//! `{1, 2, 4, max}` through [`quicksel_parallel::with_pool`], and
//! reports each workload's speedup over `threads = 1`.
//!
//! Before timing, every thread count's output is asserted **equal**
//! (`==`) to the serial output — the pool's determinism contract — so
//! the speedups compare identical computations.
//!
//! A JSON document (shared schema: `"meta"` host block + `"grid"` rows)
//! is written to `target/bench-results/parallel_scale.json` (override
//! with `PARALLEL_BENCH_OUT=...`). Acceptance headline: ≥2.5× on cold
//! QP assembly and ≥2× on B=4096 batched estimation at 4 threads —
//! *on a host with ≥4 cores*; the `meta.available_parallelism` field is
//! what makes a 1.0× on a single-core runner interpretable.

use quicksel_bench::host_meta_json;
use quicksel_core::subpop::{sample_centers, size_subpopulations, workload_points};
use quicksel_core::train::IncrementalTrainer;
use quicksel_core::{FrozenModel, SubpopGrid, UniformMixtureModel};
use quicksel_data::datasets::gaussian::gaussian_table;
use quicksel_data::workload::{CenterMode, QueryGenerator, RectWorkload, ShiftMode};
use quicksel_data::ObservedQuery;
use quicksel_geometry::{Domain, Rect};
use quicksel_parallel::{with_pool, ThreadPool};
use rand::SeedableRng;
use std::time::Instant;

const LAMBDA: f64 = 1e6;
const RIDGE_REL: f64 = quicksel_linalg::qp::DEFAULT_RIDGE_REL;
/// `m` for the QP-assembly workload (the paper cap; `train_throughput`'s
/// headline budget).
const ASSEMBLY_M: usize = 4000;
/// `m` for the end-to-end cold train (kept smaller so the naive-free
/// full pipeline — assembly + Gram + factorization — times in seconds).
const TRAIN_M: usize = 2000;
/// Batched-estimation workload: `batched_estimate`'s headline point.
const BATCH_B: usize = 4096;
const BATCH_M: usize = 1024;
const BATCH_DIM: usize = 4;
/// Per-measurement repetitions (median reported).
const REPS: usize = 3;

struct TrainWorkload {
    domain: Domain,
    subpops: Vec<Rect>,
    queries: Vec<ObservedQuery>,
}

/// The `train_throughput` workload: gaussian table, §3.3-sized supports.
fn train_workload(m: usize) -> TrainWorkload {
    let n = m / 4;
    let table = gaussian_table(3, 0.5, 20_000, 7171);
    let mut gen =
        RectWorkload::new(table.domain().clone(), 7172, ShiftMode::Random, CenterMode::DataRow)
            .with_width_frac(0.1, 0.4);
    let queries = gen.take_queries(&table, n);
    let mut rng = rand::rngs::StdRng::seed_from_u64(7173);
    let mut pool = Vec::new();
    for q in &queries {
        pool.extend(workload_points(&q.rect, 10, &mut rng));
    }
    let centers = sample_centers(&pool, m, &mut rng);
    let subpops = size_subpopulations(table.domain(), &centers, 10, 1.2);
    TrainWorkload { domain: table.domain().clone(), subpops, queries }
}

/// The `batched_estimate` workload: deterministic overlapping model and
/// probe batch.
fn batch_workload() -> (UniformMixtureModel, Vec<Rect>) {
    let rects: Vec<Rect> = (0..BATCH_M)
        .map(|z| {
            let bounds: Vec<(f64, f64)> = (0..BATCH_DIM)
                .map(|d| {
                    let lo = ((z * 7 + d * 13) % 89) as f64 * 0.1;
                    let w = 0.4 + ((z * 11 + d * 5) % 23) as f64 * 0.12;
                    (lo, (lo + w).min(10.0).max(lo + 0.05))
                })
                .collect();
            Rect::from_bounds(&bounds)
        })
        .collect();
    let weights: Vec<f64> = (0..BATCH_M)
        .map(|z| match z % 9 {
            0 => 0.0,
            1 => -0.002,
            _ => 1.0 / BATCH_M as f64,
        })
        .collect();
    let probes: Vec<Rect> = (0..BATCH_B)
        .map(|i| {
            let bounds: Vec<(f64, f64)> = (0..BATCH_DIM)
                .map(|d| {
                    let lo = ((i * 5 + d * 3) % 83) as f64 * 0.11;
                    let w = 0.5 + ((i + d * 7) % 17) as f64 * 0.5;
                    (lo, (lo + w).min(10.0))
                })
                .collect();
            Rect::from_bounds(&bounds)
        })
        .collect();
    (UniformMixtureModel::new(rects, weights), probes)
}

fn median_secs(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

/// Times `f` under `pool` (`REPS` runs, median), returning seconds and
/// the last run's output for the equality gate.
fn timed<R>(pool: &ThreadPool, mut f: impl FnMut() -> R) -> (f64, R) {
    pool.warm_up();
    let mut samples = Vec::with_capacity(REPS);
    let mut kept = None;
    for _ in 0..REPS {
        let t = Instant::now();
        let out = with_pool(pool, &mut f);
        samples.push(t.elapsed().as_secs_f64());
        kept = Some(out);
    }
    (median_secs(samples), kept.expect("ran at least once"))
}

fn main() {
    let available =
        std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);
    let max_threads = quicksel_parallel::global().threads();
    let mut thread_counts = vec![1usize, 2, 4, max_threads];
    thread_counts.sort_unstable();
    thread_counts.dedup();
    println!(
        "parallel_scale: threads {thread_counts:?} (available_parallelism {available}, pool max {max_threads})"
    );
    if available < 4 {
        println!(
            "  note: host advertises {available} core(s); speedups above 1x are not expected here"
        );
    }

    let mut lines = Vec::new();
    let mut headline_assembly = 0.0;
    let mut headline_batched = 0.0;

    // --- Workload 1: cold-train QP assembly at m = 4000. ---
    {
        let w = train_workload(ASSEMBLY_M);
        let serial_pool = ThreadPool::new(1);
        let (serial_s, serial_qp) =
            timed(&serial_pool, || SubpopGrid::new(&w.subpops).assemble_qp(&w.queries));
        for &t in &thread_counts {
            let pool = ThreadPool::new(t);
            let (secs, qp) = timed(&pool, || SubpopGrid::new(&w.subpops).assemble_qp(&w.queries));
            // Equality gate: the parallel assembly must be the serial
            // assembly, bit for bit.
            assert!(qp.q == serial_qp.q && qp.a == serial_qp.a, "assembly diverged at {t} threads");
            assert_eq!(qp.s, serial_qp.s, "rhs diverged at {t} threads");
            let speedup = serial_s / secs;
            if t == 4 {
                headline_assembly = speedup;
            }
            println!(
                "  qp_assembly      m={ASSEMBLY_M} threads={t}: {:>8.1} ms ({speedup:.2}x vs 1)",
                secs * 1e3
            );
            lines.push(format!(
                "{{\"workload\":\"qp_assembly\",\"subpops\":{ASSEMBLY_M},\"threads\":{t},\"ms\":{:.3},\"speedup_vs_serial\":{speedup:.3}}}",
                secs * 1e3
            ));
        }
    }

    // --- Workload 2: end-to-end cold train at m = 2000. ---
    {
        let w = train_workload(TRAIN_M);
        let serial_pool = ThreadPool::new(1);
        let (serial_s, serial_model) = timed(&serial_pool, || {
            let (_, model, _) = IncrementalTrainer::cold(
                &w.domain,
                w.subpops.clone(),
                &w.queries,
                LAMBDA,
                RIDGE_REL,
            )
            .expect("cold train");
            model
        });
        for &t in &thread_counts {
            let pool = ThreadPool::new(t);
            let (secs, model) = timed(&pool, || {
                let (_, model, _) = IncrementalTrainer::cold(
                    &w.domain,
                    w.subpops.clone(),
                    &w.queries,
                    LAMBDA,
                    RIDGE_REL,
                )
                .expect("cold train");
                model
            });
            // Assembly, Gram, and the blocked factor are all exactly
            // thread-count-invariant, so the trained weights are too.
            assert_eq!(
                serial_model.weights(),
                model.weights(),
                "cold-train weights diverged at {t} threads"
            );
            let speedup = serial_s / secs;
            println!(
                "  cold_train       m={TRAIN_M} threads={t}: {:>8.1} ms ({speedup:.2}x vs 1)",
                secs * 1e3
            );
            lines.push(format!(
                "{{\"workload\":\"cold_train\",\"subpops\":{TRAIN_M},\"threads\":{t},\"ms\":{:.3},\"speedup_vs_serial\":{speedup:.3}}}",
                secs * 1e3
            ));
        }
    }

    // --- Workload 3: batched estimation, B = 4096 × m = 1024. ---
    {
        let (model, probes) = batch_workload();
        let frozen = FrozenModel::new(&model);
        let scalar: Vec<f64> = probes.iter().map(|r| model.estimate(r)).collect();
        let serial_pool = ThreadPool::new(1);
        let bench_batch = |pool: &ThreadPool| {
            let mut buf = Vec::with_capacity(BATCH_B);
            timed(pool, || {
                frozen.estimate_many_into(&probes, &mut buf);
                buf.clone()
            })
        };
        let (serial_s, serial_out) = bench_batch(&serial_pool);
        assert_eq!(scalar, serial_out, "serial kernel diverged from scalar path");
        for &t in &thread_counts {
            let pool = ThreadPool::new(t);
            let (secs, out) = bench_batch(&pool);
            assert_eq!(serial_out, out, "batched kernel diverged at {t} threads");
            let speedup = serial_s / secs;
            if t == 4 {
                headline_batched = speedup;
            }
            let rps = BATCH_B as f64 / secs;
            println!(
                "  batched_estimate B={BATCH_B} m={BATCH_M} threads={t}: {rps:>12.0} rects/s ({speedup:.2}x vs 1)"
            );
            lines.push(format!(
                "{{\"workload\":\"batched_estimate\",\"batch\":{BATCH_B},\"subpops\":{BATCH_M},\"threads\":{t},\"ms\":{:.3},\"rects_per_sec\":{rps:.1},\"speedup_vs_serial\":{speedup:.3}}}",
                secs * 1e3
            ));
        }
    }

    println!(
        "  headline (4 threads): qp_assembly {headline_assembly:.2}x, batched_estimate {headline_batched:.2}x"
    );
    let json = format!(
        "{{\"bench\":\"parallel_scale\",\"meta\":{},\"thread_counts\":{thread_counts:?},\"grid\":[{}],\"headline_qp_assembly_speedup_t4\":{headline_assembly:.3},\"headline_batched_speedup_t4\":{headline_batched:.3}}}",
        host_meta_json(),
        lines.join(",")
    );
    println!("{json}");

    let out = std::env::var("PARALLEL_BENCH_OUT")
        .unwrap_or_else(|_| "target/bench-results/parallel_scale.json".into());
    if let Some(parent) = std::path::Path::new(&out).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match std::fs::write(&out, format!("{json}\n")) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => eprintln!("could not write {out}: {e}"),
    }
}
