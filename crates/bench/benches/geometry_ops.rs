//! Micro-benchmarks of the geometric kernels QuickSel's training is built
//! from (§3.1: "only min, max, and multiplication operations").

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use quicksel_geometry::{union_volume, Interval, Rect};

fn rects(n: usize, dim: usize) -> Vec<Rect> {
    // Deterministic pseudo-random boxes (no rng dependency needed).
    let mut x = 0.123456789f64;
    let mut next = move || {
        x = (x * 997.0 + 0.314159).fract();
        x
    };
    (0..n)
        .map(|_| {
            Rect::new(
                (0..dim)
                    .map(|_| {
                        let lo = next() * 80.0;
                        Interval::new(lo, lo + 1.0 + next() * 19.0)
                    })
                    .collect(),
            )
        })
        .collect()
}

fn bench_intersection_volume(c: &mut Criterion) {
    let rs = rects(256, 3);
    c.bench_function("intersection_volume_3d_pairwise_256", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..rs.len() {
                for j in (i + 1)..rs.len() {
                    acc += rs[i].intersection_volume(&rs[j]);
                }
            }
            black_box(acc)
        })
    });
}

fn bench_union_volume(c: &mut Criterion) {
    let rs = rects(8, 2);
    c.bench_function("union_volume_2d_8rects", |b| {
        b.iter(|| black_box(union_volume(black_box(&rs))))
    });
}

fn bench_subtract(c: &mut Criterion) {
    let rs = rects(64, 3);
    let hole = &rs[0];
    c.bench_function("rect_subtract_3d_64", |b| {
        b.iter(|| {
            let mut count = 0;
            for r in &rs[1..] {
                count += r.subtract(hole).len();
            }
            black_box(count)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_intersection_volume, bench_union_volume, bench_subtract
}
criterion_main!(benches);
