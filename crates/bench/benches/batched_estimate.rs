//! Batched vs scalar estimation kernel bench, with machine-readable JSON
//! output.
//!
//! ```sh
//! cargo bench -p quicksel-bench --bench batched_estimate
//! ```
//!
//! Measures rect×subpop estimation throughput over the grid
//! B ∈ {1, 16, 256, 4096} batch sizes × m ∈ {64, 256, 1024}
//! subpopulations, two ways:
//!
//! * **scalar** — the per-rect AoS path: `UniformMixtureModel::estimate`
//!   mapped over the batch (one pointer-chasing, branchy model walk per
//!   rect).
//! * **batched** — `FrozenModel::estimate_many`: the model frozen into
//!   SoA column arrays once, then the blocked rect×subpop kernel
//!   (`quicksel_core::batch`). Results are identical bit for bit; only
//!   the time differs.
//!
//! A JSON document is written to
//! `target/bench-results/batched_estimate.json` (relative to the bench's
//! working directory, i.e. `crates/bench/` under `cargo bench`; override
//! with `BATCHED_BENCH_OUT=...`), including the B=4096 × m=1024 speedup
//! the README quotes.

use quicksel_core::FrozenModel;
use quicksel_core::UniformMixtureModel;
use quicksel_geometry::Rect;
use std::time::Instant;

const DIM: usize = 4;
const BATCH_SIZES: [usize; 4] = [1, 16, 256, 4096];
const SUBPOP_COUNTS: [usize; 3] = [64, 256, 1024];
/// Per-measurement time budget (seconds).
const BUDGET: f64 = 0.25;

/// Deterministic model of `m` overlapping subpopulations over a
/// `[0, 10)^DIM` domain, with a mix of positive, negative, and zero
/// weights (all shapes the trained QP produces).
fn model(m: usize) -> UniformMixtureModel {
    let rects: Vec<Rect> = (0..m)
        .map(|z| {
            let bounds: Vec<(f64, f64)> = (0..DIM)
                .map(|d| {
                    let lo = ((z * 7 + d * 13) % 89) as f64 * 0.1;
                    let w = 0.4 + ((z * 11 + d * 5) % 23) as f64 * 0.12;
                    (lo, (lo + w).min(10.0).max(lo + 0.05))
                })
                .collect();
            Rect::from_bounds(&bounds)
        })
        .collect();
    let weights: Vec<f64> = (0..m)
        .map(|z| match z % 9 {
            0 => 0.0,
            1 => -0.002,
            _ => 1.0 / m as f64,
        })
        .collect();
    UniformMixtureModel::new(rects, weights)
}

/// Deterministic probe batch: a spread of narrow, medium, and wide rects.
fn probes(b: usize) -> Vec<Rect> {
    (0..b)
        .map(|i| {
            let bounds: Vec<(f64, f64)> = (0..DIM)
                .map(|d| {
                    let lo = ((i * 5 + d * 3) % 83) as f64 * 0.11;
                    let w = 0.5 + ((i + d * 7) % 17) as f64 * 0.5;
                    (lo, (lo + w).min(10.0))
                })
                .collect();
            Rect::from_bounds(&bounds)
        })
        .collect()
}

/// Runs `f` (which estimates a whole batch of `b` rects) repeatedly for
/// the time budget; returns rects/second.
fn throughput(b: usize, mut f: impl FnMut() -> f64) -> f64 {
    // Warm up.
    std::hint::black_box(f());
    let start = Instant::now();
    let mut reps = 0u64;
    let mut acc = 0.0;
    while start.elapsed().as_secs_f64() < BUDGET {
        acc += f();
        reps += 1;
    }
    std::hint::black_box(acc);
    (reps * b as u64) as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    let mut lines = Vec::new();
    let mut headline_speedup = 0.0;
    println!("batched_estimate: scalar (AoS map) vs batched (SoA blocked kernel), dim={DIM}");
    for &m in &SUBPOP_COUNTS {
        let model = model(m);
        let frozen = FrozenModel::new(&model);
        for &b in &BATCH_SIZES {
            let rects = probes(b);
            // Sanity: the two paths must agree exactly before we time them.
            let scalar: Vec<f64> = rects.iter().map(|r| model.estimate(r)).collect();
            let batched = frozen.estimate_many(&rects);
            assert_eq!(scalar, batched, "kernel diverged from scalar path");

            let scalar_rps = throughput(b, || rects.iter().map(|r| model.estimate(r)).sum::<f64>());
            let mut buf = Vec::with_capacity(b);
            let batched_rps = throughput(b, || {
                frozen.estimate_many_into(&rects, &mut buf);
                buf.iter().sum::<f64>()
            });
            let speedup = batched_rps / scalar_rps;
            if b == 4096 && m == 1024 {
                headline_speedup = speedup;
            }
            println!(
                "  B={b:>4} m={m:>4}: scalar {scalar_rps:>12.0} rects/s | batched {batched_rps:>12.0} rects/s | {speedup:.2}x"
            );
            lines.push(format!(
                "{{\"batch\":{b},\"subpops\":{m},\"scalar_rects_per_sec\":{scalar_rps:.1},\"batched_rects_per_sec\":{batched_rps:.1},\"speedup\":{speedup:.3}}}"
            ));
        }
    }
    println!("  headline (B=4096, m=1024): {headline_speedup:.2}x");

    let json = format!(
        "{{\"bench\":\"batched_estimate\",\"meta\":{},\"dim\":{DIM},\"simd_feature\":{},\"grid\":[{}],\"headline_speedup_b4096_m1024\":{headline_speedup:.3}}}",
        quicksel_bench::host_meta_json(),
        cfg!(feature = "simd"),
        lines.join(",")
    );
    println!("{json}");

    let out = std::env::var("BATCHED_BENCH_OUT")
        .unwrap_or_else(|_| "target/bench-results/batched_estimate.json".into());
    if let Some(parent) = std::path::Path::new(&out).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match std::fs::write(&out, format!("{json}\n")) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => eprintln!("could not write {out}: {e}"),
    }
}
