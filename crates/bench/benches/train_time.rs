//! Figure 3a/3d as a Criterion micro-benchmark: the cost of one model
//! refinement per method at a fixed number of observed queries.
//!
//! Besides the Criterion console output, a JSON document in the shared
//! bench schema (see `batched_estimate` / `train_throughput`) is written
//! to `target/bench-results/train_time.json` (override with
//! `TRAIN_TIME_BENCH_OUT=...`) so the `BENCH_*.json` perf trajectory
//! covers the training path per method, not just estimation.

use criterion::{black_box, criterion_group, BatchSize, Criterion};
use quicksel_baselines::{Isomer, IsomerQp, QueryModel, STHoles};
use quicksel_core::{QuickSel, RefinePolicy};
use quicksel_data::datasets::gaussian::gaussian_table;
use quicksel_data::workload::{CenterMode, QueryGenerator, RectWorkload, ShiftMode};
use quicksel_data::{Estimate, Learn, ObservedQuery, Table};
use std::time::Instant;

fn workload(table: &Table, n: usize) -> Vec<ObservedQuery> {
    let mut gen =
        RectWorkload::new(table.domain().clone(), 777, ShiftMode::Random, CenterMode::DataRow)
            .with_width_frac(0.1, 0.4);
    gen.take_queries(table, n)
}

fn bench_refine(c: &mut Criterion) {
    let table = gaussian_table(2, 0.5, 20_000, 888);
    let n = 50;
    let queries = workload(&table, n + 1);
    let (warm, last) = queries.split_at(n);

    let mut group = c.benchmark_group("refine_at_50_queries");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));

    // QuickSel: full §3.3 + §4 retrain on the 51st observation.
    group.bench_function("quicksel", |b| {
        let mut qs =
            QuickSel::builder(table.domain().clone()).refine_policy(RefinePolicy::Manual).build();
        for q in warm {
            qs.observe(q);
        }
        b.iter_batched(
            || qs.clone_for_bench(),
            |mut fresh| {
                fresh.observe(&last[0]);
                fresh.refine().expect("train");
                black_box(fresh.param_count())
            },
            BatchSize::LargeInput,
        )
    });

    // STHoles: drill + calibrate + merge.
    group.bench_function("stholes", |b| {
        b.iter_batched(
            || {
                let mut st = STHoles::new(table.domain().clone());
                for q in warm {
                    st.observe(q);
                }
                st
            },
            |mut st| {
                st.observe(&last[0]);
                black_box(st.param_count())
            },
            BatchSize::LargeInput,
        )
    });

    // ISOMER: split + iterative scaling.
    group.bench_function("isomer", |b| {
        b.iter_batched(
            || {
                let mut iso = Isomer::new(table.domain().clone());
                for q in warm {
                    iso.observe(q);
                }
                iso
            },
            |mut iso| {
                iso.observe(&last[0]);
                black_box(iso.param_count())
            },
            BatchSize::LargeInput,
        )
    });

    // ISOMER+QP: split + Woodbury solve.
    group.bench_function("isomer_qp", |b| {
        b.iter_batched(
            || {
                let mut e = IsomerQp::new(table.domain().clone());
                for q in warm {
                    e.observe(q);
                }
                e
            },
            |mut e| {
                e.observe(&last[0]);
                black_box(e.param_count())
            },
            BatchSize::LargeInput,
        )
    });

    // QueryModel: append-only (lazy training).
    group.bench_function("query_model", |b| {
        b.iter_batched(
            || {
                let mut e = QueryModel::new(table.domain().clone());
                for q in warm {
                    e.observe(q);
                }
                e
            },
            |mut e| {
                e.observe(&last[0]);
                black_box(e.param_count())
            },
            BatchSize::LargeInput,
        )
    });

    group.finish();
}

/// Helper so the QuickSel benchmark can snapshot state cheaply.
trait CloneForBench {
    fn clone_for_bench(&self) -> QuickSel;
}

impl CloneForBench for QuickSel {
    fn clone_for_bench(&self) -> QuickSel {
        let mut cfg = self.config().clone();
        cfg.refine_policy = RefinePolicy::Manual;
        let mut fresh = QuickSel::with_config(self.domain().clone(), cfg);
        // Re-observing is the cheapest faithful snapshot (points re-draw).
        for q in self.observed() {
            fresh.observe(q);
        }
        fresh
    }
}

criterion_group!(benches, bench_refine);

/// One timed refine per method (median of `reps`), for the JSON report.
fn timed_refine_ms(reps: usize, mut setup: impl FnMut() -> Box<dyn FnOnce()>) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let run = setup();
            let t = Instant::now();
            run();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

fn write_json() {
    let table = gaussian_table(2, 0.5, 20_000, 888);
    let n = 50;
    let queries = workload(&table, n + 1);
    let (warm, last) = queries.split_at(n);

    let mut lines = Vec::new();
    {
        let mut qs =
            QuickSel::builder(table.domain().clone()).refine_policy(RefinePolicy::Manual).build();
        for q in warm {
            qs.observe(q);
        }
        let ms = timed_refine_ms(5, || {
            let mut fresh = qs.clone_for_bench();
            let q = last[0].clone();
            Box::new(move || {
                fresh.observe(&q);
                fresh.refine().expect("train");
                black_box(fresh.param_count());
            })
        });
        lines.push(format!("{{\"method\":\"quicksel\",\"refine_ms\":{ms:.4}}}"));
    }
    macro_rules! baseline {
        ($name:literal, $ctor:expr) => {{
            let ms = timed_refine_ms(5, || {
                let mut e = $ctor;
                for q in warm {
                    e.observe(q);
                }
                let q = last[0].clone();
                Box::new(move || {
                    e.observe(&q);
                    black_box(e.param_count());
                })
            });
            lines.push(format!("{{\"method\":\"{}\",\"refine_ms\":{ms:.4}}}", $name));
        }};
    }
    baseline!("stholes", STHoles::new(table.domain().clone()));
    baseline!("isomer", Isomer::new(table.domain().clone()));
    baseline!("isomer_qp", IsomerQp::new(table.domain().clone()));
    baseline!("query_model", QueryModel::new(table.domain().clone()));

    let json =
        format!("{{\"bench\":\"train_time\",\"queries\":{n},\"grid\":[{}]}}", lines.join(","));
    println!("{json}");
    let out = std::env::var("TRAIN_TIME_BENCH_OUT")
        .unwrap_or_else(|_| "target/bench-results/train_time.json".into());
    if let Some(parent) = std::path::Path::new(&out).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match std::fs::write(&out, format!("{json}\n")) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => eprintln!("could not write {out}: {e}"),
    }
}

fn main() {
    // The vendored criterion shim has no CLI filtering — every run
    // executes the full matrix — so the JSON report is always in sync
    // with what just ran.
    benches();
    write_json();
}
