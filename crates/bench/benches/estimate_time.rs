//! Estimation-latency micro-benchmarks: a trained model must answer the
//! optimizer's selectivity probes in microseconds.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use quicksel_baselines::{AutoHist, AutoSample, Isomer, STHoles};
use quicksel_core::{QuickSel, RefinePolicy};
use quicksel_data::datasets::gaussian::gaussian_table;
use quicksel_data::workload::{CenterMode, QueryGenerator, RectWorkload, ShiftMode};
use quicksel_data::{Estimate, Learn};
use quicksel_geometry::Rect;

fn bench_estimate(c: &mut Criterion) {
    let table = gaussian_table(2, 0.5, 20_000, 999);
    let mut gen =
        RectWorkload::new(table.domain().clone(), 1000, ShiftMode::Random, CenterMode::DataRow)
            .with_width_frac(0.1, 0.4);
    let train = gen.take_queries(&table, 100);
    let probes: Vec<Rect> = gen.take_queries(&table, 64).into_iter().map(|q| q.rect).collect();

    let mut qs =
        QuickSel::builder(table.domain().clone()).refine_policy(RefinePolicy::Manual).build();
    let mut st = STHoles::new(table.domain().clone());
    let mut iso = Isomer::new(table.domain().clone());
    let mut ah = AutoHist::with_budget(table.domain().clone(), 400);
    let mut asmp = AutoSample::new(table.domain().clone(), 400, 5);
    for q in &train {
        qs.observe(q);
        st.observe(q);
        iso.observe(q);
    }
    qs.refine().expect("train");
    ah.sync_data(&table, table.row_count());
    asmp.sync_data(&table, table.row_count());

    let mut group = c.benchmark_group("estimate_after_100_queries");
    group.sample_size(30);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let run = |b: &mut criterion::Bencher, est: &dyn Estimate| {
        b.iter(|| {
            let mut acc = 0.0;
            for p in &probes {
                acc += est.estimate(black_box(p));
            }
            black_box(acc)
        })
    };
    group.bench_function("quicksel_m400", |b| run(b, &qs));
    group.bench_function("stholes", |b| run(b, &st));
    group.bench_function("isomer", |b| run(b, &iso));
    group.bench_function("autohist", |b| run(b, &ah));
    group.bench_function("autosample", |b| run(b, &asmp));
    group.finish();
}

criterion_group!(benches, bench_estimate);
criterion_main!(benches);
