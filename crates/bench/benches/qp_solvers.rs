//! Figure 6 as a Criterion micro-benchmark: the analytic penalized solve
//! vs. the iterative standard-QP (ADMM) solve on identical problems.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use quicksel_core::subpop::{build_subpopulations, workload_points};
use quicksel_core::train::build_qp;
use quicksel_data::datasets::gaussian::gaussian_table;
use quicksel_data::workload::{CenterMode, QueryGenerator, RectWorkload, ShiftMode};
use quicksel_linalg::{solve_analytic, AdmmQp, QpProblem};
use rand::SeedableRng;

fn make_problem(n_queries: usize) -> QpProblem {
    let table = gaussian_table(2, 0.5, 20_000, 4242);
    let mut gen =
        RectWorkload::new(table.domain().clone(), 4243, ShiftMode::Random, CenterMode::DataRow)
            .with_width_frac(0.1, 0.4);
    let queries = gen.take_queries(&table, n_queries);
    let mut rng = rand::rngs::StdRng::seed_from_u64(4244);
    let mut pool = Vec::new();
    for q in &queries {
        pool.extend(workload_points(&q.rect, 10, &mut rng));
    }
    let m = (4 * n_queries).min(4000);
    let subpops = build_subpopulations(table.domain(), &pool, m, 10, 1.2, &mut rng);
    build_qp(table.domain(), &subpops, &queries)
}

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("qp_solvers");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &n in &[25usize, 50, 100] {
        let qp = make_problem(n);
        group.bench_with_input(BenchmarkId::new("analytic", n), &qp, |b, qp| {
            b.iter(|| {
                black_box(
                    solve_analytic(qp, 1e6, quicksel_linalg::qp::DEFAULT_RIDGE_REL).expect("solve"),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("admm_standard_qp", n), &qp, |b, qp| {
            b.iter(|| black_box(AdmmQp::default().solve(qp).expect("solve")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
