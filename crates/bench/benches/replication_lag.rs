//! Replication-lag bench: a durable primary under steady feedback
//! ingest, a replica pull-looping beside it, reporting how far behind
//! the replica runs and what each sync costs.
//!
//! ```sh
//! cargo bench -p quicksel-bench --bench replication_lag
//! ```
//!
//! A durable registry is served on loopback; one client thread ingests
//! feedback batches for `REPL_LAG_SECS` (default 2) seconds while the
//! replica agent syncs as fast as it can. Each sync records its
//! wall-clock cost, the watermark lag the primary reported at sync end,
//! and the bytes fetched — the numbers an operator sizes
//! `--sync-interval-ms` and the client staleness bound against.
//!
//! After ingest stops, one final sync must converge the replica to the
//! primary **bit for bit**: identical probe estimates, identical row
//! counts. The bench asserts this — a lag number from a replica that
//! diverges would be meaningless.
//!
//! Results are printed human-readably and written as JSON (shared
//! schema: a `"meta"` host block plus the run row) to
//! `target/bench-results/replication_lag.json` — override with
//! `REPL_LAG_OUT=...`.

use quicksel_core::{QuickSel, RefinePolicy};
use quicksel_data::ObservedQuery;
use quicksel_geometry::{Domain, Rect};
use quicksel_net::{serve, NetClient, ServerConfig};
use quicksel_persist::DurabilityOptions;
use quicksel_replica::{ReplicaAgent, ReplicaBackend, ReplicaOptions};
use quicksel_service::{EstimatorRegistry, TableId};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const FEEDBACK_BATCH: usize = 4;

fn domain() -> Domain {
    Domain::of_reals(&[("x", 0.0, 10.0), ("y", 0.0, 10.0)])
}

fn learner(seed: u64) -> QuickSel {
    QuickSel::builder(domain())
        .refine_policy(RefinePolicy::EveryK(8))
        .fixed_subpops(64)
        .seed(seed)
        .build()
}

fn feedback(k: usize) -> ObservedQuery {
    let lo_x = (k * 13 % 70) as f64 * 0.1;
    let lo_y = (k * 29 % 60) as f64 * 0.1;
    let len = 0.8 + (k % 5) as f64 * 0.6;
    let rect = Rect::from_bounds(&[(lo_x, lo_x + len), (lo_y, lo_y + len)]);
    ObservedQuery::new(rect, (k % 10) as f64 * 0.1)
}

fn probes() -> Vec<Rect> {
    (0..24)
        .map(|k| {
            let lo = (k * 7 % 80) as f64 * 0.1;
            Rect::from_bounds(&[(lo, (lo + 1.5).min(10.0)), (0.0, 0.5 + (k % 9) as f64)])
        })
        .collect()
}

fn percentile_us(sorted_ns: &[u64], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * q).round() as usize;
    sorted_ns[idx] as f64 / 1e3
}

/// Closed-loop feedback ingest over the wire until the deadline.
fn ingest_loop(addr: std::net::SocketAddr, secs: f64) -> u64 {
    let mut client = NetClient::connect(addr).expect("ingest client connect");
    let start = Instant::now();
    let deadline = Duration::from_secs_f64(secs);
    let mut rows = 0u64;
    let mut k = 0usize;
    while start.elapsed() < deadline {
        let batch: Vec<ObservedQuery> =
            (0..FEEDBACK_BATCH).map(|j| feedback(k * FEEDBACK_BATCH + j)).collect();
        k += 1;
        match client.observe_batch("t", &batch) {
            Ok(outcome) => rows += u64::from(outcome.accepted_rows),
            Err(quicksel_net::ClientError::Retry { after_ms, .. }) => {
                std::thread::sleep(Duration::from_millis(u64::from(after_ms).min(50)));
            }
            Err(e) => panic!("ingest failed: {e}"),
        }
    }
    rows
}

fn main() {
    let secs: f64 = std::env::var("REPL_LAG_SECS").ok().and_then(|v| v.parse().ok()).unwrap_or(2.0);

    let scratch =
        std::env::temp_dir().join(format!("quicksel-replication-lag-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let p_dir = scratch.join("primary");
    let r_dir = scratch.join("replica");
    std::fs::create_dir_all(&p_dir).expect("create primary dir");

    // The primary: durable, checkpointing every 64 rows so the manifest
    // rotates checkpoints and trims WAL segments mid-run.
    let registry = EstimatorRegistry::new();
    let opts = DurabilityOptions { checkpoint_rows: 64, ..DurabilityOptions::default() };
    registry
        .register_durable(&p_dir, "t", domain(), 2, opts, |i| learner(i as u64))
        .expect("register durable table");
    let primary = Arc::new(registry);
    let handle = serve(
        Arc::clone(&primary),
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            ingest_rows_per_s: f64::INFINITY,
            ..ServerConfig::default()
        },
    )
    .expect("bind primary");
    let addr = handle.addr();

    println!("replication_lag: {secs}s steady ingest, replica syncing flat out");
    let done = Arc::new(AtomicBool::new(false));
    let ingest = {
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let rows = ingest_loop(addr, secs);
            done.store(true, Ordering::SeqCst);
            rows
        })
    };

    // The replica: sync as fast as the pull path allows, recording what
    // each pass cost and how far behind it landed.
    let backend: Arc<ReplicaBackend<QuickSel>> = Arc::new(ReplicaBackend::empty());
    let mut agent = ReplicaAgent::new(
        ReplicaOptions::new(addr.to_string(), &r_dir),
        Arc::clone(&backend),
        |_, _, shard| learner(shard as u64),
    );
    let mut sync_ns: Vec<u64> = Vec::new();
    let mut lags: Vec<u64> = Vec::new();
    let mut bytes_fetched = 0u64;
    // A sync can lose the manifest-vs-prune race while the primary is
    // rotating checkpoints under it: the advertised file is gone by the
    // time the chunk fetch lands. That is a transient, typed error the
    // production loop retries through — here it is counted, not fatal.
    let mut sync_errors = 0u64;
    while !done.load(Ordering::SeqCst) {
        let t = Instant::now();
        match agent.sync_once() {
            Ok(report) => {
                sync_ns.push(t.elapsed().as_nanos() as u64);
                lags.push(report.watermark_lag);
                bytes_fetched += report.bytes_fetched;
            }
            Err(_) => sync_errors += 1,
        }
    }
    let rows_ingested = ingest.join().expect("ingest thread");

    // Convergence: a quiet sync (the primary is static now), then the
    // replica must be the primary, bit for bit.
    let report = agent.sync_once().expect("final sync");
    bytes_fetched += report.bytes_fetched;
    assert_eq!(report.watermark_lag, 0, "final sync left the replica behind");
    let table = TableId::from("t");
    let rects = probes();
    let want = primary.get(&table).expect("primary table").estimate_many(&rects);
    let got = backend.registry().get(&table).expect("replica table").estimate_many(&rects);
    assert_eq!(got, want, "replica diverged from the primary");
    assert_eq!(
        backend.registry().stats().total.queries_ingested,
        primary.stats().total.queries_ingested,
        "replica row count diverged"
    );

    let syncs = sync_ns.len() as u64;
    sync_ns.sort_unstable();
    let sync_p50 = percentile_us(&sync_ns, 0.50);
    let sync_p99 = percentile_us(&sync_ns, 0.99);
    let max_lag = lags.iter().copied().max().unwrap_or(0);
    let mean_lag =
        if lags.is_empty() { 0.0 } else { lags.iter().sum::<u64>() as f64 / lags.len() as f64 };
    println!(
        "  {rows_ingested} rows ingested, {syncs} syncs ({sync_errors} raced a prune): \
         sync p50={sync_p50:.1}us p99={sync_p99:.1}us, lag mean={mean_lag:.1} max={max_lag} \
         rows, {bytes_fetched} bytes shipped, converged bit-exact"
    );

    let json = format!(
        "{{\"bench\":\"replication_lag\",\"meta\":{},\"run\":{{\"secs\":{secs},\
         \"rows_ingested\":{rows_ingested},\"syncs\":{syncs},\"sync_errors\":{sync_errors},\
         \"sync_p50_us\":{sync_p50:.1},\"sync_p99_us\":{sync_p99:.1},\
         \"mean_lag_rows\":{mean_lag:.1},\"max_lag_rows\":{max_lag},\
         \"bytes_fetched\":{bytes_fetched},\"bit_exact\":true}}}}",
        quicksel_bench::host_meta_json(),
    );
    println!("{json}");

    let out = std::env::var("REPL_LAG_OUT")
        .unwrap_or_else(|_| "target/bench-results/replication_lag.json".into());
    if let Some(parent) = std::path::Path::new(&out).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match std::fs::write(&out, format!("{json}\n")) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => eprintln!("could not write {out}: {e}"),
    }
    let _ = std::fs::remove_dir_all(&scratch);
}
