//! Durability-path benchmarks: checkpoint write bandwidth and recovery
//! latency as a function of the WAL tail length.
//!
//! ```sh
//! cargo bench -p quicksel-bench --bench checkpoint_recover
//! ```
//!
//! Two questions the checkpoint subsystem's tuning knobs
//! (`DurabilityOptions::checkpoint_rows` / `checkpoint_interval`) trade
//! off against each other:
//!
//! * **How expensive is a checkpoint?** — encode a trained estimator's
//!   full state (model, trainer caches, feedback log, RNG) and write it
//!   through the tmp+rename protocol, at the paper's subpopulation
//!   budgets. Reported as encode/write times and end-to-end MB/s.
//! * **What does deferring checkpoints cost at recovery?** — open a
//!   shard whose WAL tail holds 0..512 rows past the newest checkpoint
//!   and time `SelectivityService::open_durable` end to end (checkpoint
//!   decode + WAL replay through the normal ingest path).
//!
//! A JSON document is written to
//! `target/bench-results/checkpoint_recover.json` (override with
//! `CHECKPOINT_BENCH_OUT=...`), same convention as the other benches,
//! with the host fingerprint under `"meta"`.

use quicksel_core::{QuickSel, RefinePolicy};
use quicksel_data::{Learn, ObservedQuery};
use quicksel_geometry::{Domain, Rect};
use quicksel_persist::{DurabilityOptions, PersistLearner, ShardDurability};
use quicksel_service::SelectivityService;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Subpopulation budgets for the checkpoint-write measurement; 4000 is
/// the paper cap, so its state size is the headline.
const BUDGETS: [usize; 2] = [1000, 4000];
/// WAL tail lengths (rows past the newest checkpoint) for the recovery
/// measurement.
const TAILS: [usize; 4] = [0, 32, 128, 512];
/// Rows per WAL batch, matching the service's per-batch record framing.
const BATCH_ROWS: usize = 2;

fn domain() -> Domain {
    Domain::of_reals(&[("x", 0.0, 10.0), ("y", 0.0, 10.0), ("z", 0.0, 10.0)])
}

fn learner(subpops: usize) -> QuickSel {
    QuickSel::builder(domain())
        .refine_policy(RefinePolicy::Manual)
        .fixed_subpops(subpops)
        .seed(4242)
        .build()
}

fn batch(i: u64) -> Vec<ObservedQuery> {
    (0..BATCH_ROWS as u64)
        .map(|j| {
            let k = i * BATCH_ROWS as u64 + j;
            let lo_x = (k * 13 % 70) as f64 * 0.1;
            let lo_y = (k * 29 % 60) as f64 * 0.1;
            let lo_z = (k * 17 % 50) as f64 * 0.1;
            let len = 0.8 + (k % 5) as f64 * 0.6;
            let rect =
                Rect::from_bounds(&[(lo_x, lo_x + len), (lo_y, lo_y + len), (lo_z, lo_z + len)]);
            ObservedQuery::new(rect, (k % 10) as f64 * 0.1)
        })
        .collect()
}

/// A fresh scratch directory under the system temp dir; callers remove
/// it when done.
fn scratch(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("quicksel-bench-ckpt-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn median_secs(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

/// Checkpoint write bandwidth at one subpopulation budget: state encode
/// time, tmp+rename write time, and end-to-end MB/s (median of 5).
fn bench_checkpoint_write(subpops: usize) -> String {
    // Train enough feedback that the trainer caches (Gram, AᵀA) are at
    // their steady-state size for this budget.
    let mut est = learner(subpops);
    let n_batches = (subpops / 4).max(32) as u64;
    for i in 0..n_batches {
        est.observe_batch(&batch(i));
    }
    est.refine().expect("cold train");

    let dir = scratch(&format!("write-{subpops}"));
    let mut shard =
        ShardDurability::create(&dir, DurabilityOptions::default()).expect("create shard");
    // The watermark must advance per checkpoint, so feed one WAL batch
    // between writes; its cost is excluded from the timed section.
    let mut encode_samples = Vec::new();
    let mut write_samples = Vec::new();
    let mut bytes = 0usize;
    for rep in 0..5u64 {
        shard.log_batch(&batch(n_batches + rep)).expect("wal append");
        let t = Instant::now();
        let state = est.save_state().expect("encode state");
        encode_samples.push(t.elapsed().as_secs_f64());
        bytes = state.len();
        let t = Instant::now();
        shard.write_checkpoint(&state, &[]).expect("write checkpoint");
        write_samples.push(t.elapsed().as_secs_f64());
    }
    let _ = std::fs::remove_dir_all(&dir);

    let encode_s = median_secs(encode_samples);
    let write_s = median_secs(write_samples);
    let mb = bytes as f64 / (1 << 20) as f64;
    let mbps = mb / (encode_s + write_s);
    println!(
        "  checkpoint m={subpops:>4}: state {:>8.1} KiB | encode {:>7.3} ms | write {:>7.3} ms | {mbps:>7.1} MB/s",
        bytes as f64 / 1024.0,
        encode_s * 1e3,
        write_s * 1e3,
    );
    format!(
        "{{\"subpops\":{subpops},\"state_bytes\":{bytes},\"encode_ms\":{:.4},\"write_ms\":{:.4},\"mb_per_s\":{mbps:.2}}}",
        encode_s * 1e3,
        write_s * 1e3,
    )
}

/// Recovery latency with `tail` rows in the WAL past the newest
/// checkpoint: build the shard once, then time `open_durable` (median
/// of 3 reopen cycles — recovery is read-only, so reopening the same
/// directory re-measures the same work).
fn bench_recovery(tail_rows: usize) -> String {
    let dir = scratch(&format!("recover-{tail_rows}"));
    // Never checkpoint on row count; the bench places the single
    // checkpoint explicitly so the WAL tail length is exact.
    let opts = DurabilityOptions {
        checkpoint_rows: u64::MAX,
        checkpoint_interval: Duration::from_secs(1 << 20),
        ..DurabilityOptions::default()
    };
    let base_batches = 64u64;
    {
        let (svc, _) = SelectivityService::open_durable(&dir, opts.clone(), || learner(256))
            .expect("open durable");
        for i in 0..base_batches {
            svc.observe_batch(&batch(i)).expect("ingest");
        }
        svc.checkpoint_now().expect("checkpoint");
        for i in 0..(tail_rows / BATCH_ROWS) as u64 {
            svc.observe_batch(&batch(base_batches + i)).expect("tail ingest");
        }
    }

    let mut samples = Vec::new();
    let mut replayed = 0u64;
    for _ in 0..3 {
        let t = Instant::now();
        let (_svc, rec) = SelectivityService::<QuickSel>::open_durable(&dir, opts.clone(), || {
            panic!("a checkpoint exists; recovery must not start cold")
        })
        .expect("recover");
        samples.push(t.elapsed().as_secs_f64());
        assert!(rec.recovered_from_checkpoint, "checkpoint not found");
        assert_eq!(rec.replayed_rows as usize, tail_rows, "tail length drifted");
        replayed = rec.replayed_rows;
    }
    let _ = std::fs::remove_dir_all(&dir);

    let recover_s = median_secs(samples);
    println!(
        "  recovery tail={tail_rows:>4} rows: {:>8.2} ms (replayed {replayed} rows)",
        recover_s * 1e3
    );
    format!("{{\"wal_tail_rows\":{tail_rows},\"recover_ms\":{:.4}}}", recover_s * 1e3)
}

fn main() {
    println!("checkpoint_recover: checkpoint write bandwidth + recovery vs WAL tail");
    let writes: Vec<String> = BUDGETS.iter().map(|&m| bench_checkpoint_write(m)).collect();
    let recoveries: Vec<String> = TAILS.iter().map(|&t| bench_recovery(t)).collect();

    let json = format!(
        "{{\"bench\":\"checkpoint_recover\",\"meta\":{},\"checkpoint_write\":[{}],\"recovery\":[{}]}}",
        quicksel_bench::host_meta_json(),
        writes.join(","),
        recoveries.join(",")
    );
    println!("{json}");

    let out = std::env::var("CHECKPOINT_BENCH_OUT")
        .unwrap_or_else(|_| "target/bench-results/checkpoint_recover.json".into());
    if let Some(parent) = std::path::Path::new(&out).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match std::fs::write(&out, format!("{json}\n")) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => eprintln!("could not write {out}: {e}"),
    }
}
