//! Networked-serving load bench: a loopback `quicksel-net` server under
//! mixed read/write traffic, reporting request-latency percentiles and
//! throughput.
//!
//! ```sh
//! cargo bench -p quicksel-bench --bench net_load
//! ```
//!
//! A trained registry is served on a loopback socket; `NET_LOAD_CLIENTS`
//! (default 4) client threads each run a closed loop for
//! `NET_LOAD_SECS` (default 2) seconds: 90% batched estimates (8 rects
//! per request), 10% feedback batches (4 rows). Per-request wall-clock
//! latencies are merged across clients into p50/p99/p999, alongside
//! aggregate requests/s — the numbers an operator sizes the admission
//! knobs against.
//!
//! Results are printed human-readably and written as JSON (shared
//! schema: a `"meta"` host block plus per-config rows) to
//! `target/bench-results/net_load.json` — override with
//! `NET_LOAD_OUT=...`. The run asserts the server saw **zero** decode
//! errors: load must never be mistaken for corruption.

use quicksel_core::{QuickSel, RefinePolicy};
use quicksel_data::ObservedQuery;
use quicksel_geometry::{Domain, Rect};
use quicksel_net::{serve, NetClient, ServerConfig};
use quicksel_service::EstimatorRegistry;
use std::sync::Arc;
use std::time::{Duration, Instant};

const ESTIMATE_BATCH: usize = 8;
const FEEDBACK_BATCH: usize = 4;
/// 1 write request in every 10 — a feedback-heavy planner workload.
const WRITE_EVERY: usize = 10;

fn domain() -> Domain {
    Domain::of_reals(&[("x", 0.0, 10.0), ("y", 0.0, 10.0)])
}

fn feedback(k: usize) -> ObservedQuery {
    let lo_x = (k * 13 % 70) as f64 * 0.1;
    let lo_y = (k * 29 % 60) as f64 * 0.1;
    let len = 0.8 + (k % 5) as f64 * 0.6;
    let rect = Rect::from_bounds(&[(lo_x, lo_x + len), (lo_y, lo_y + len)]);
    ObservedQuery::new(rect, (k % 10) as f64 * 0.1)
}

fn probe(k: usize) -> Rect {
    let lo = (k * 7 % 80) as f64 * 0.1;
    Rect::from_bounds(&[(lo, (lo + 1.5).min(10.0)), (0.0, 0.5 + (k % 9) as f64)])
}

fn registry() -> Arc<EstimatorRegistry<QuickSel>> {
    let registry = EstimatorRegistry::new();
    let d = domain();
    let svc = registry.register_with("t", d.clone(), 2, |i| {
        QuickSel::builder(d.clone())
            .refine_policy(RefinePolicy::Manual)
            .fixed_subpops(64)
            .seed(i as u64)
            .build()
    });
    // Pre-train so estimates exercise a real model, not the empty prior.
    for b in 0..24 {
        let batch: Vec<ObservedQuery> = (0..4).map(|j| feedback(b * 4 + j)).collect();
        svc.observe_batch(&batch).expect("pre-train");
    }
    Arc::new(registry)
}

fn percentile_us(sorted_ns: &[u64], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * q).round() as usize;
    sorted_ns[idx] as f64 / 1e3
}

struct LoadResult {
    requests: u64,
    estimates: u64,
    writes: u64,
    retries: u64,
    latencies_ns: Vec<u64>,
}

/// One closed-loop client: estimate-heavy mixed traffic until the
/// deadline.
fn client_loop(addr: std::net::SocketAddr, secs: f64, salt: usize) -> LoadResult {
    let mut client = NetClient::connect(addr).expect("bench client connect");
    let mut result = LoadResult {
        requests: 0,
        estimates: 0,
        writes: 0,
        retries: 0,
        latencies_ns: Vec::with_capacity(1 << 16),
    };
    let start = Instant::now();
    let deadline = Duration::from_secs_f64(secs);
    let mut k = salt * 7919;
    while start.elapsed() < deadline {
        k += 1;
        let t = Instant::now();
        let outcome = if k.is_multiple_of(WRITE_EVERY) {
            let rows: Vec<ObservedQuery> =
                (0..FEEDBACK_BATCH).map(|j| feedback(k * FEEDBACK_BATCH + j)).collect();
            result.writes += 1;
            client.observe_batch("t", &rows).map(|_| ())
        } else {
            let rects: Vec<Rect> = (0..ESTIMATE_BATCH).map(|j| probe(k + j)).collect();
            result.estimates += 1;
            client.estimate_many("t", &rects).map(|_| ())
        };
        match outcome {
            Ok(()) => {
                result.requests += 1;
                result.latencies_ns.push(t.elapsed().as_nanos() as u64);
            }
            Err(quicksel_net::ClientError::Retry { after_ms, .. }) => {
                result.retries += 1;
                std::thread::sleep(Duration::from_millis(u64::from(after_ms).min(50)));
            }
            Err(e) => panic!("bench request failed: {e}"),
        }
    }
    result
}

fn run_config(clients: usize, secs: f64) -> String {
    let backend = registry();
    let config = ServerConfig {
        estimate_concurrency: 0,          // throughput run: measure, don't shed
        ingest_rows_per_s: f64::INFINITY, // rate knobs exercised in tests, not here
        ..ServerConfig::default()
    };
    let mut handle = serve(backend, config).expect("bind bench server");
    let addr = handle.addr();

    // Wall clock covers the whole fan-out, spawn to last join — if
    // clients ever get serialized behind too few server workers, the
    // throughput number degrades honestly instead of being divided by
    // one client's private window.
    let t0 = Instant::now();
    let workers: Vec<_> =
        (0..clients).map(|i| std::thread::spawn(move || client_loop(addr, secs, i))).collect();
    let results: Vec<LoadResult> = workers.into_iter().map(|w| w.join().expect("client")).collect();
    let wall = t0.elapsed().as_secs_f64();

    let server_stats = handle.stats();
    handle.shutdown();
    assert_eq!(server_stats.decode_errors, 0, "load produced decode errors");
    assert_eq!(server_stats.errors_sent, 0, "load produced server errors");

    let mut latencies: Vec<u64> =
        results.iter().flat_map(|r| r.latencies_ns.iter().copied()).collect();
    latencies.sort_unstable();
    let requests: u64 = results.iter().map(|r| r.requests).sum();
    let estimates: u64 = results.iter().map(|r| r.estimates).sum();
    let writes: u64 = results.iter().map(|r| r.writes).sum();
    let retries: u64 = results.iter().map(|r| r.retries).sum();
    let req_per_sec = requests as f64 / wall.max(1e-9);
    let p50 = percentile_us(&latencies, 0.50);
    let p99 = percentile_us(&latencies, 0.99);
    let p999 = percentile_us(&latencies, 0.999);

    println!(
        "  clients={clients}: {requests} reqs in {wall:.2}s -> {req_per_sec:>8.0} req/s  \
         p50={p50:>7.1}us p99={p99:>7.1}us p999={p999:>8.1}us  \
         ({estimates} est / {writes} obs, {retries} retries)"
    );
    format!(
        "{{\"clients\":{clients},\"secs\":{wall:.3},\"requests\":{requests},\
         \"estimate_requests\":{estimates},\"observe_requests\":{writes},\"retries\":{retries},\
         \"req_per_sec\":{req_per_sec:.1},\"p50_us\":{p50:.1},\"p99_us\":{p99:.1},\
         \"p999_us\":{p999:.1}}}"
    )
}

fn main() {
    let secs: f64 = std::env::var("NET_LOAD_SECS").ok().and_then(|v| v.parse().ok()).unwrap_or(2.0);
    let max_clients: usize =
        std::env::var("NET_LOAD_CLIENTS").ok().and_then(|v| v.parse().ok()).unwrap_or(4);

    println!(
        "net_load: loopback mixed traffic ({}% estimates of {ESTIMATE_BATCH} rects, \
         {}% feedback of {FEEDBACK_BATCH} rows), {secs}s per config",
        100 - 100 / WRITE_EVERY,
        100 / WRITE_EVERY
    );
    let mut rows = Vec::new();
    let mut clients = 1usize;
    while clients <= max_clients {
        rows.push(run_config(clients, secs));
        clients *= 4;
    }

    let json = format!(
        "{{\"bench\":\"net_load\",\"meta\":{},\"mixed\":[{}]}}",
        quicksel_bench::host_meta_json(),
        rows.join(",")
    );
    println!("{json}");

    let out = std::env::var("NET_LOAD_OUT")
        .unwrap_or_else(|_| "target/bench-results/net_load.json".into());
    if let Some(parent) = std::path::Path::new(&out).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match std::fs::write(&out, format!("{json}\n")) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => eprintln!("could not write {out}: {e}"),
    }
}
