//! Experiment harness for the QuickSel paper's evaluation (§5).
//!
//! Every table and figure of the paper has a dedicated binary in
//! `src/bin/` (see DESIGN.md §4 for the index); this library holds the
//! shared pieces: the method factory, the query-driven evaluation driver,
//! dataset builders at experiment scale, and plain-text table output.
//!
//! Absolute numbers will differ from the paper (different hardware,
//! synthetic stand-ins for the proprietary datasets, single-threaded dense
//! kernels); the harness is built to reproduce the paper's *shapes*: who
//! wins, by what rough factor, and where the curves cross.

pub mod driver;
pub mod host;
pub mod methods;
pub mod report;
pub mod scale;

pub use driver::{evaluate, run_query_driven, score, QueryDrivenRun};
pub use host::host_meta_json;
pub use methods::{make_estimator, MethodKind};
pub use report::{fmt_duration_ms, fmt_pct, TextTable};
pub use scale::Scale;
