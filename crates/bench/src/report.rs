//! Plain-text table output matching the paper's rows/series.

/// Formats milliseconds compactly (µs under 1 ms, seconds over 10 s).
pub fn fmt_duration_ms(ms: f64) -> String {
    if ms < 1.0 {
        format!("{:.1} µs", ms * 1e3)
    } else if ms < 10_000.0 {
        format!("{ms:.1} ms")
    } else {
        format!("{:.2} s", ms / 1e3)
    }
}

/// Formats a percentage with adaptive precision.
pub fn fmt_pct(p: f64) -> String {
    if p < 10.0 {
        format!("{p:.2}%")
    } else {
        format!("{p:.1}%")
    }
}

/// A simple aligned text table (headers + rows).
#[derive(Debug, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Adds one row (must match header arity).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(c);
                for _ in c.chars().count()..widths[i] {
                    line.push(' ');
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_formats() {
        assert_eq!(fmt_duration_ms(0.5), "500.0 µs");
        assert_eq!(fmt_duration_ms(12.34), "12.3 ms");
        assert_eq!(fmt_duration_ms(15_000.0), "15.00 s");
    }

    #[test]
    fn pct_formats() {
        assert_eq!(fmt_pct(4.678), "4.68%");
        assert_eq!(fmt_pct(46.78), "46.8%");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(vec!["method", "err"]);
        t.row(vec!["QuickSel", "4.68%"]);
        t.row(vec!["ISOMER", "14.0%"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("method"));
        assert!(lines[2].starts_with("QuickSel"));
        // Columns align: 'err' column starts at the same offset everywhere.
        let col = lines[0].find("err").unwrap();
        assert_eq!(&lines[2][col..col + 1], "4");
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }
}
