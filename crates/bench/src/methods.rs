//! Factory for the estimators compared in §5.1.

use quicksel_baselines::isomer::IsomerConfig;
use quicksel_baselines::{AutoHist, AutoSample, Isomer, IsomerQp, QueryModel, STHoles};
use quicksel_core::{QuickSel, QuickSelConfig, RefinePolicy, TrainingMethod};
use quicksel_data::Learn;
use quicksel_geometry::Domain;

/// The methods of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MethodKind {
    /// QuickSel with the analytic penalty solver (the paper's method).
    QuickSel,
    /// QuickSel trained through the iterative standard QP (§5.4 baseline).
    QuickSelStdQp,
    /// STHoles error-feedback histogram.
    STHoles,
    /// ISOMER max-entropy histogram (iterative scaling).
    Isomer,
    /// ISOMER buckets + QuickSel's QP.
    IsomerQp,
    /// Query-similarity kernel regression.
    QueryModel,
    /// Scan-based equi-width histogram with the 20% auto-update rule.
    AutoHist,
    /// Scan-based uniform sample with the 10% auto-update rule.
    AutoSample,
}

impl MethodKind {
    /// Display name matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            MethodKind::QuickSel => "QuickSel",
            MethodKind::QuickSelStdQp => "QuickSel(StdQP)",
            MethodKind::STHoles => "STHoles",
            MethodKind::Isomer => "ISOMER",
            MethodKind::IsomerQp => "ISOMER+QP",
            MethodKind::QueryModel => "QueryModel",
            MethodKind::AutoHist => "AutoHist",
            MethodKind::AutoSample => "AutoSample",
        }
    }

    /// The query-driven methods of Figure 3.
    pub fn query_driven() -> [MethodKind; 5] {
        [
            MethodKind::STHoles,
            MethodKind::Isomer,
            MethodKind::IsomerQp,
            MethodKind::QueryModel,
            MethodKind::QuickSel,
        ]
    }
}

/// Options shared by the factory.
#[derive(Debug, Clone)]
pub struct MethodOptions {
    /// Parameter/space budget for budgeted methods (AutoHist cells,
    /// AutoSample tuples, STHoles buckets, fixed-m QuickSel when
    /// `fixed_params` is set).
    pub budget: usize,
    /// Pin QuickSel's subpopulation count instead of the 4·n default.
    pub fixed_params: Option<usize>,
    /// QuickSel refine cadence.
    pub refine_policy: RefinePolicy,
    /// RNG seed.
    pub seed: u64,
    /// ISOMER bucket-count safety cap.
    pub isomer_bucket_cap: usize,
}

impl Default for MethodOptions {
    fn default() -> Self {
        Self {
            budget: 1000,
            fixed_params: None,
            refine_policy: RefinePolicy::EveryQuery,
            seed: 42,
            isomer_bucket_cap: 400_000,
        }
    }
}

/// Builds a ready-to-run estimator. The returned trait object learns
/// through [`Learn`] and estimates through its
/// [`Estimate`](quicksel_data::Estimate) supertrait.
pub fn make_estimator(kind: MethodKind, domain: &Domain, opts: &MethodOptions) -> Box<dyn Learn> {
    match kind {
        MethodKind::QuickSel | MethodKind::QuickSelStdQp => {
            let mut cfg = QuickSelConfig {
                seed: opts.seed,
                refine_policy: opts.refine_policy,
                ..Default::default()
            };
            if kind == MethodKind::QuickSelStdQp {
                cfg.training = TrainingMethod::StandardQp;
            }
            if let Some(m) = opts.fixed_params {
                cfg = cfg.with_fixed_subpops(m);
            }
            Box::new(QuickSel::with_config(domain.clone(), cfg))
        }
        MethodKind::STHoles => Box::new(STHoles::with_budget(domain.clone(), opts.budget.max(1))),
        MethodKind::Isomer => {
            let cfg = IsomerConfig { max_buckets: opts.isomer_bucket_cap, ..Default::default() };
            Box::new(Isomer::with_config(domain.clone(), cfg))
        }
        MethodKind::IsomerQp => {
            Box::new(IsomerQp::with_params(domain.clone(), 1e6, opts.isomer_bucket_cap))
        }
        MethodKind::QueryModel => Box::new(QueryModel::new(domain.clone())),
        MethodKind::AutoHist => Box::new(AutoHist::with_budget(domain.clone(), opts.budget)),
        MethodKind::AutoSample => {
            Box::new(AutoSample::new(domain.clone(), opts.budget.max(1), opts.seed))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_builds_every_method() {
        let domain = Domain::of_reals(&[("x", 0.0, 1.0), ("y", 0.0, 1.0)]);
        let opts = MethodOptions::default();
        for kind in [
            MethodKind::QuickSel,
            MethodKind::QuickSelStdQp,
            MethodKind::STHoles,
            MethodKind::Isomer,
            MethodKind::IsomerQp,
            MethodKind::QueryModel,
            MethodKind::AutoHist,
            MethodKind::AutoSample,
        ] {
            let est = make_estimator(kind, &domain, &opts);
            // Fresh estimators answer with a sane prior.
            let e = est.estimate(&domain.full_rect());
            assert!((0.0..=1.0).contains(&e), "{}: {e}", est.name());
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(MethodKind::QuickSel.label(), "QuickSel");
        assert_eq!(MethodKind::Isomer.label(), "ISOMER");
        assert_eq!(MethodKind::query_driven().len(), 5);
    }
}
