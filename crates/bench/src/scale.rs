//! Experiment scaling knobs.
//!
//! The paper's runs use millions of rows and hours of machine time; the
//! defaults here reproduce every curve shape in minutes on one core. Set
//! the `QS_SCALE` environment variable (a float multiplier on row counts)
//! or `QS_FAST=1` (coarser experiment grids) to trade fidelity for time.

/// Scaling configuration resolved from the environment.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Multiplier applied to dataset row counts.
    pub rows: f64,
    /// Whether to use the reduced experiment grid.
    pub fast: bool,
}

impl Default for Scale {
    fn default() -> Self {
        Self::from_env()
    }
}

impl Scale {
    /// Reads `QS_SCALE` and `QS_FAST` from the environment.
    pub fn from_env() -> Self {
        let rows = std::env::var("QS_SCALE")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .filter(|v| *v > 0.0)
            .unwrap_or(1.0);
        let fast = std::env::var("QS_FAST").map(|v| v == "1" || v == "true").unwrap_or(false);
        Self { rows, fast }
    }

    /// Applies the row multiplier to a base row count (min 1000).
    pub fn rows(&self, base: usize) -> usize {
        ((base as f64 * self.rows) as usize).max(1000)
    }

    /// Default DMV-like row count (paper: 11.9M).
    pub fn dmv_rows(&self) -> usize {
        self.rows(if self.fast { 20_000 } else { 100_000 })
    }

    /// Default Instacart-like row count (paper: 3.4M).
    pub fn instacart_rows(&self) -> usize {
        self.rows(if self.fast { 20_000 } else { 100_000 })
    }

    /// Default Gaussian row count (paper: 1M).
    pub fn gaussian_rows(&self) -> usize {
        self.rows(if self.fast { 20_000 } else { 100_000 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_values() {
        let s = Scale { rows: 0.5, fast: false };
        assert_eq!(s.rows(100_000), 50_000);
        // Floors at 1000.
        assert_eq!(s.rows(100), 1000);
    }

    #[test]
    fn fast_mode_shrinks_defaults() {
        let slow = Scale { rows: 1.0, fast: false };
        let fast = Scale { rows: 1.0, fast: true };
        assert!(fast.dmv_rows() < slow.dmv_rows());
        assert!(fast.gaussian_rows() < slow.gaussian_rows());
    }
}
