//! Evaluation drivers shared by the experiment binaries.

use quicksel_data::{ErrorStats, Estimate, Learn, ObservedQuery};
use std::time::Instant;

/// Result of feeding a training workload and evaluating a test workload.
#[derive(Debug, Clone)]
pub struct QueryDrivenRun {
    /// Wall time of each `observe` call (milliseconds) — includes any
    /// retraining the method performs inside `observe`.
    pub per_observe_ms: Vec<f64>,
    /// Total training wall time in milliseconds.
    pub total_train_ms: f64,
    /// Mean per-query training time (the paper's "per-query time").
    pub mean_per_query_ms: f64,
    /// Error statistics on the test workload.
    pub stats: ErrorStats,
    /// `param_count()` after training (Figure 4's y-axis).
    pub final_params: usize,
}

/// Feeds `train` into the estimator (timing each observation) and scores
/// it on `test`.
pub fn run_query_driven(
    est: &mut dyn Learn,
    train: &[ObservedQuery],
    test: &[ObservedQuery],
) -> QueryDrivenRun {
    let mut per_observe_ms = Vec::with_capacity(train.len());
    let t_total = Instant::now();
    for q in train {
        let t = Instant::now();
        est.observe(q);
        per_observe_ms.push(t.elapsed().as_secs_f64() * 1e3);
    }
    let total_train_ms = t_total.elapsed().as_secs_f64() * 1e3;
    let stats = score(&*est, test);
    QueryDrivenRun {
        mean_per_query_ms: if train.is_empty() { 0.0 } else { total_train_ms / train.len() as f64 },
        per_observe_ms,
        total_train_ms,
        stats,
        final_params: est.param_count(),
    }
}

/// Scores an estimator on a test workload through **one** batched
/// `estimate_many` call over the whole workload.
///
/// This matters for the serving path: `Estimate::estimate_many` is where
/// QuickSel freezes its mixture model into SoA form, so scoring N test
/// queries costs one freeze + one blocked kernel pass instead of N scalar
/// walks of the array-of-structs model (the old per-call behavior, which
/// effectively re-froze nothing and re-walked everything). Scores are
/// identical either way — the kernel is term-order identical to the
/// scalar path (see `quicksel_core::batch`) — only the time changes;
/// `tests/driver_score.rs` pins the equality.
pub fn score(est: &dyn Estimate, test: &[ObservedQuery]) -> ErrorStats {
    let rects: Vec<_> = test.iter().map(|q| q.rect.clone()).collect();
    let estimates = est.estimate_many(&rects);
    let pairs: Vec<(f64, f64)> =
        test.iter().zip(&estimates).map(|(q, &e)| (q.selectivity, e)).collect();
    ErrorStats::from_pairs(&pairs)
}

/// Back-compatible alias of [`score`].
pub fn evaluate(est: &dyn Estimate, test: &[ObservedQuery]) -> ErrorStats {
    score(est, test)
}

/// One measurement point of a streaming run (Figures 3 and 4).
#[derive(Debug, Clone)]
pub struct StreamCheckpoint {
    /// Number of observed queries so far.
    pub n: usize,
    /// Training time of the most recent observation window (ms/query).
    pub window_per_query_ms: f64,
    /// Cumulative training time (ms).
    pub cumulative_ms: f64,
    /// Test error statistics at this point.
    pub stats: ErrorStats,
    /// `param_count()` at this point.
    pub params: usize,
}

/// Streams `train` into the estimator and snapshots error/params/time at
/// each of the (ascending) `checkpoints`.
pub fn stream_with_checkpoints(
    est: &mut dyn Learn,
    train: &[ObservedQuery],
    test: &[ObservedQuery],
    checkpoints: &[usize],
) -> Vec<StreamCheckpoint> {
    let mut out = Vec::with_capacity(checkpoints.len());
    let mut cumulative = 0.0f64;
    let mut window = 0.0f64;
    let mut window_len = 0usize;
    let mut next = 0usize;
    for (i, q) in train.iter().enumerate() {
        if next >= checkpoints.len() {
            break;
        }
        let t = Instant::now();
        est.observe(q);
        let ms = t.elapsed().as_secs_f64() * 1e3;
        cumulative += ms;
        window += ms;
        window_len += 1;
        if i + 1 == checkpoints[next] {
            out.push(StreamCheckpoint {
                n: i + 1,
                window_per_query_ms: window / window_len.max(1) as f64,
                cumulative_ms: cumulative,
                stats: score(&*est, test),
                params: est.param_count(),
            });
            window = 0.0;
            window_len = 0;
            next += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use quicksel_geometry::{Domain, Rect};

    /// Estimator that memorizes observed rects exactly.
    struct Memorizer {
        seen: Vec<ObservedQuery>,
    }
    impl Estimate for Memorizer {
        fn name(&self) -> &'static str {
            "memorizer"
        }
        fn estimate(&self, rect: &Rect) -> f64 {
            self.seen.iter().find(|q| &q.rect == rect).map_or(0.5, |q| q.selectivity)
        }
        fn param_count(&self) -> usize {
            self.seen.len()
        }
    }
    impl Learn for Memorizer {
        fn observe_batch(&mut self, batch: &[ObservedQuery]) {
            self.seen.extend_from_slice(batch);
        }
    }

    #[test]
    fn driver_times_and_scores() {
        let domain = Domain::of_reals(&[("x", 0.0, 1.0)]);
        let q1 = ObservedQuery::new(Rect::from_bounds(&[(0.0, 0.5)]), 0.3);
        let q2 = ObservedQuery::new(Rect::from_bounds(&[(0.5, 1.0)]), 0.7);
        let mut m = Memorizer { seen: vec![] };
        let run = run_query_driven(&mut m, std::slice::from_ref(&q1), &[q1.clone(), q2.clone()]);
        assert_eq!(run.per_observe_ms.len(), 1);
        assert_eq!(run.final_params, 1);
        // Perfect on q1 (memorized), 20pp absolute error on q2 (prior 0.5).
        assert_eq!(run.stats.count, 2);
        assert!((run.stats.mean_abs - 0.1).abs() < 1e-12);
        let _ = domain;
    }

    #[test]
    fn empty_training_is_fine() {
        let mut m = Memorizer { seen: vec![] };
        let run = run_query_driven(&mut m, &[], &[]);
        assert_eq!(run.mean_per_query_ms, 0.0);
        assert_eq!(run.stats.count, 0);
    }
}
