//! Host/parallelism metadata for the machine-readable bench JSON.
//!
//! Every bench that writes a `target/bench-results/*.json` document
//! embeds [`host_meta_json`] under a `"meta"` key, so `BENCH_*.json`
//! trajectories collected on different machines (or different
//! `QUICKSEL_THREADS` settings) stay comparable: a 2× headline on a
//! 16-core box and a 1.0× on a 1-core CI runner are both *expected*,
//! and the metadata is what tells them apart.

/// One JSON object with the effective workspace-pool thread count, the
/// host's advertised parallelism, any `QUICKSEL_THREADS` override, and
/// the OS/arch pair. Forces the global pool into existence (and thereby
/// warms it) on first call.
pub fn host_meta_json() -> String {
    let available =
        std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);
    let threads = quicksel_parallel::global().threads();
    // Parse the override exactly like `quicksel_parallel::default_threads`
    // does (emit it as a JSON number); an unparsable value had no effect
    // on the pool and is reported as null rather than interpolated raw
    // into the document.
    let env = std::env::var("QUICKSEL_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .map_or_else(|| "null".to_string(), |n| n.max(1).to_string());
    format!(
        "{{\"threads\":{threads},\"available_parallelism\":{available},\
         \"quicksel_threads_env\":{env},\"os\":\"{}\",\"arch\":\"{}\"}}",
        std::env::consts::OS,
        std::env::consts::ARCH
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_has_the_comparability_keys() {
        let meta = host_meta_json();
        for key in
            ["\"threads\":", "\"available_parallelism\":", "\"quicksel_threads_env\":", "\"os\":"]
        {
            assert!(meta.contains(key), "missing {key} in {meta}");
        }
        assert!(meta.starts_with('{') && meta.ends_with('}'));
    }
}
