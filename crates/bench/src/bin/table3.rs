//! Table 3: the paper's headline ISOMER-vs-QuickSel comparison.
//!
//! * (a) — efficiency at similar accuracy: per-query training time of
//!   ISOMER (fewer queries, many buckets) vs. QuickSel (more queries, few
//!   parameters), plus the speedup factor;
//! * (b) — accuracy at similar training time: absolute error of ISOMER on
//!   a small workload vs. QuickSel on a large one.
//!
//! QuickSel refines in batches of 100 here (the §5.3 cadence) so the
//! 600–700-query runs stay single-machine friendly; per-query time is the
//! amortized total, matching the paper's "training time … for refining a
//! model using an additional observed query" accounting.
//!
//! Run with `cargo run -p quicksel-bench --release --bin table3`.

use quicksel_bench::driver::run_query_driven;
use quicksel_bench::methods::{make_estimator, MethodKind, MethodOptions};
use quicksel_bench::{fmt_duration_ms, fmt_pct, Scale, TextTable};
use quicksel_core::RefinePolicy;
use quicksel_data::datasets::{dmv_table, instacart_table};
use quicksel_data::workload::{CenterMode, QueryGenerator, RectWorkload, ShiftMode};
use quicksel_data::Table;

struct Setup {
    name: &'static str,
    table: Table,
    isomer_queries: usize,
    quicksel_queries: usize,
    isomer_small: usize, // Table 3b's "similar training time" ISOMER run
}

fn main() {
    let scale = Scale::from_env();
    let shrink = |n: usize| if scale.fast { n / 5 } else { n };
    let setups = vec![
        Setup {
            name: "DMV",
            table: dmv_table(scale.dmv_rows(), 301),
            isomer_queries: shrink(150),
            quicksel_queries: shrink(700),
            isomer_small: shrink(60),
        },
        Setup {
            name: "Instacart",
            table: instacart_table(scale.instacart_rows(), 302),
            isomer_queries: shrink(140),
            quicksel_queries: shrink(600),
            isomer_small: shrink(60),
        },
    ];

    let mut t3a = TextTable::new(vec![
        "dataset", "method", "queries", "params", "rel err", "ms/query", "speedup",
    ]);
    let mut t3b = TextTable::new(vec![
        "dataset",
        "method",
        "queries",
        "params",
        "abs err",
        "total train",
        "err reduction",
    ]);

    for s in &setups {
        let mut gen =
            RectWorkload::new(s.table.domain().clone(), 31, ShiftMode::Random, CenterMode::DataRow)
                .with_width_frac(0.1, 0.4);
        let train = gen.take_queries(&s.table, s.quicksel_queries);
        let test = gen.take_queries(&s.table, 100);

        // ISOMER on its (smaller) workload — per-query retraining is its
        // natural mode.
        let opts = MethodOptions::default();
        let mut iso = make_estimator(MethodKind::Isomer, s.table.domain(), &opts);
        let iso_run = run_query_driven(iso.as_mut(), &train[..s.isomer_queries], &test);

        // QuickSel on the full workload with batched refinement.
        let opts = MethodOptions { refine_policy: RefinePolicy::EveryK(100), ..Default::default() };
        let mut qs = make_estimator(MethodKind::QuickSel, s.table.domain(), &opts);
        let qs_run = run_query_driven(qs.as_mut(), &train, &test);

        let speedup = iso_run.mean_per_query_ms / qs_run.mean_per_query_ms.max(1e-9);
        t3a.row(vec![
            s.name.to_string(),
            "ISOMER".into(),
            s.isomer_queries.to_string(),
            iso_run.final_params.to_string(),
            fmt_pct(iso_run.stats.mean_rel_pct),
            fmt_duration_ms(iso_run.mean_per_query_ms),
            String::new(),
        ]);
        t3a.row(vec![
            s.name.to_string(),
            "QuickSel".into(),
            s.quicksel_queries.to_string(),
            qs_run.final_params.to_string(),
            fmt_pct(qs_run.stats.mean_rel_pct),
            fmt_duration_ms(qs_run.mean_per_query_ms),
            format!("{speedup:.0}x"),
        ]);

        // Table 3b: ISOMER at the small workload vs QuickSel at full size.
        let opts = MethodOptions::default();
        let mut iso_small = make_estimator(MethodKind::Isomer, s.table.domain(), &opts);
        let iso_small_run = run_query_driven(iso_small.as_mut(), &train[..s.isomer_small], &test);
        let reduction =
            (1.0 - qs_run.stats.mean_abs / iso_small_run.stats.mean_abs.max(1e-12)) * 100.0;
        t3b.row(vec![
            s.name.to_string(),
            "ISOMER".into(),
            s.isomer_small.to_string(),
            iso_small_run.final_params.to_string(),
            format!("{:.4}", iso_small_run.stats.mean_abs),
            fmt_duration_ms(iso_small_run.total_train_ms),
            String::new(),
        ]);
        t3b.row(vec![
            s.name.to_string(),
            "QuickSel".into(),
            s.quicksel_queries.to_string(),
            qs_run.final_params.to_string(),
            format!("{:.4}", qs_run.stats.mean_abs),
            fmt_duration_ms(qs_run.total_train_ms),
            format!("{reduction:.1}%"),
        ]);
    }

    println!("=== Table 3a — efficiency comparison for similar errors ===");
    t3a.print();
    println!("(paper: DMV 313x, Instacart 178x speedup)\n");
    println!("=== Table 3b — accuracy comparison for similar training time ===");
    t3b.print();
    println!("(paper: 75.3% / 46.8% error reduction)");
}
