//! Figure 5: QuickSel vs. periodically-updated scan-based methods under
//! data drift (§5.3).
//!
//! Protocol: Gaussian table (correlation 0); every 100 queries a batch of
//! new tuples with correlation +0.1 is inserted. AutoHist/AutoSample react
//! through their auto-update rules; QuickSel refines from query feedback
//! every 100 queries. All methods get the same 100-parameter budget.
//!
//! * (a) — rolling relative error per 100-query window,
//! * (b) — mean model-update time per method.
//!
//! Run with `cargo run -p quicksel-bench --release --bin fig5`.

use quicksel_bench::methods::{make_estimator, MethodKind, MethodOptions};
use quicksel_bench::{fmt_duration_ms, fmt_pct, Scale, TextTable};
use quicksel_core::RefinePolicy;
use quicksel_data::drift::{DriftEvent, GaussianDrift};
use quicksel_data::{mean_rel_error_pct, Learn, ObservedQuery};
use std::time::Instant;

fn main() {
    let scale = Scale::from_env();
    let drift = GaussianDrift {
        initial_rows: scale.gaussian_rows(),
        batch_rows: scale.gaussian_rows() / 5,
        queries_per_phase: 100,
        phases: if scale.fast { 4 } else { 10 },
        rho_step: 0.1,
        seed: 1802,
    };
    let mut table = drift.initial_table();
    println!(
        "=== Figure 5 — Gaussian drift: {} initial rows, {}-row batches, {} phases ===\n",
        drift.initial_rows, drift.batch_rows, drift.phases
    );

    let budget = 100;
    let kinds = [MethodKind::AutoHist, MethodKind::AutoSample, MethodKind::QuickSel];
    let mut ests: Vec<Box<dyn Learn>> = kinds
        .iter()
        .map(|&k| {
            let opts = MethodOptions {
                budget,
                fixed_params: Some(budget),
                refine_policy: RefinePolicy::EveryK(100),
                ..Default::default()
            };
            make_estimator(k, table.domain(), &opts)
        })
        .collect();

    // Initial statistics builds for the scan-based methods.
    let mut update_ms: Vec<Vec<f64>> = vec![Vec::new(); ests.len()];
    for (e, times) in ests.iter_mut().zip(&mut update_ms) {
        let t = Instant::now();
        e.sync_data(&table, table.row_count());
        let ms = t.elapsed().as_secs_f64() * 1e3;
        if ms > 1e-6 {
            times.push(ms);
        }
    }

    // Stream the drift timeline.
    let mut window_pairs: Vec<Vec<(f64, f64)>> = vec![Vec::new(); ests.len()];
    let mut windows: Vec<Vec<f64>> = vec![Vec::new(); ests.len()]; // per-window errors
    let mut q_seen = 0usize;
    for event in drift.events() {
        match event {
            DriftEvent::Query(rect) => {
                let truth = table.selectivity(&rect);
                for (ei, e) in ests.iter_mut().enumerate() {
                    let est = e.estimate(&rect);
                    window_pairs[ei].push((truth, est));
                    // Query feedback: only query-driven methods use it. The
                    // observe call is timed since QuickSel's periodic refine
                    // runs inside it.
                    let t = Instant::now();
                    e.observe(&ObservedQuery::new(rect.clone(), truth));
                    let ms = t.elapsed().as_secs_f64() * 1e3;
                    if ms > 0.01 {
                        update_ms[ei].push(ms);
                    }
                }
                q_seen += 1;
                if q_seen.is_multiple_of(100) {
                    for (ei, pairs) in window_pairs.iter_mut().enumerate() {
                        windows[ei].push(mean_rel_error_pct(pairs));
                        pairs.clear();
                    }
                }
            }
            DriftEvent::Insert(rows) => {
                for r in &rows {
                    table.push_row(r);
                }
                for (ei, e) in ests.iter_mut().enumerate() {
                    let t = Instant::now();
                    e.sync_data(&table, rows.len());
                    let ms = t.elapsed().as_secs_f64() * 1e3;
                    if ms > 0.01 {
                        update_ms[ei].push(ms);
                    }
                }
            }
        }
    }

    println!("--- Fig 5a: rolling relative error per 100-query window ---");
    let mut t = TextTable::new(
        std::iter::once("queries".to_string())
            .chain(kinds.iter().map(|k| k.label().to_string()))
            .collect(),
    );
    for w in 0..windows[0].len() {
        let mut row = vec![format!("{}-{}", w * 100 + 1, (w + 1) * 100)];
        for errs in &windows {
            row.push(fmt_pct(errs[w]));
        }
        t.row(row);
    }
    t.print();
    println!();

    println!("--- Fig 5b: mean model-update time ---");
    let mut t = TextTable::new(vec!["method", "updates", "mean update time"]);
    for ((k, times), _) in kinds.iter().zip(&update_ms).zip(0..) {
        let mean =
            if times.is_empty() { 0.0 } else { times.iter().sum::<f64>() / times.len() as f64 };
        t.row(vec![k.label().to_string(), times.len().to_string(), fmt_duration_ms(mean)]);
    }
    t.print();

    // Shape summary: QuickSel should overtake both scan-based methods.
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let (ah, asmp, qs) = (avg(&windows[0]), avg(&windows[1]), avg(&windows[2]));
    println!(
        "\nshape check: mean error AutoHist {} / AutoSample {} / QuickSel {} (paper: QuickSel 57.3% better than AutoHist, 91.1% than AutoSample)",
        fmt_pct(ah),
        fmt_pct(asmp),
        fmt_pct(qs)
    );
}
