//! Figure 4: model compactness and effectiveness.
//!
//! * (a)/(c) — number of observed queries vs. number of model parameters,
//! * (b)/(d) — number of model parameters vs. relative error,
//!
//! plus the §2.3/§5.5 bucket-growth quote (ISOMER's bucket count after
//! 100/300 observed queries).
//!
//! Run with `cargo run -p quicksel-bench --release --bin fig4`.

use quicksel_bench::driver::stream_with_checkpoints;
use quicksel_bench::methods::{make_estimator, MethodKind, MethodOptions};
use quicksel_bench::{fmt_pct, Scale, TextTable};
use quicksel_data::datasets::{dmv_table, instacart_table};
use quicksel_data::workload::{CenterMode, QueryGenerator, RectWorkload, ShiftMode};
use quicksel_data::Table;

fn main() {
    let scale = Scale::from_env();
    let datasets: Vec<(&str, Table)> = vec![
        ("DMV", dmv_table(scale.dmv_rows(), 201)),
        ("Instacart", instacart_table(scale.instacart_rows(), 202)),
    ];
    let max_n = if scale.fast { 40 } else { 100 };
    let checkpoints: Vec<usize> = (10..=max_n).step_by(10).collect();

    for (name, table) in &datasets {
        println!("=== Figure 4 — dataset: {name} ({} rows) ===\n", table.row_count());
        let mut gen = RectWorkload::new(
            table.domain().clone(),
            17 + name.len() as u64,
            ShiftMode::Random,
            CenterMode::DataRow,
        )
        .with_width_frac(0.1, 0.4);
        let train = gen.take_queries(table, max_n);
        let test = gen.take_queries(table, 100);

        let mut results = Vec::new();
        for kind in MethodKind::query_driven() {
            let opts = MethodOptions { budget: 2000, ..Default::default() };
            let mut est = make_estimator(kind, table.domain(), &opts);
            let cps = stream_with_checkpoints(est.as_mut(), &train, &test, &checkpoints);
            results.push((kind, cps));
        }

        println!(
            "--- Fig 4{}: #observed queries vs #model parameters ---",
            if *name == "DMV" { "a" } else { "c" }
        );
        let mut t = TextTable::new(
            std::iter::once("n".to_string())
                .chain(results.iter().map(|(k, _)| k.label().to_string()))
                .collect(),
        );
        for (ci, &n) in checkpoints.iter().enumerate() {
            let mut row = vec![n.to_string()];
            for (_, cps) in &results {
                row.push(cps.get(ci).map_or("-".into(), |c| c.params.to_string()));
            }
            t.row(row);
        }
        t.print();
        println!();

        println!(
            "--- Fig 4{}: #model parameters vs relative error ---",
            if *name == "DMV" { "b" } else { "d" }
        );
        let mut t = TextTable::new(vec!["method", "params", "rel error"]);
        for (kind, cps) in &results {
            for c in cps.iter().filter(|c| c.n % 20 == 0 || c.n == checkpoints[0]) {
                t.row(vec![
                    kind.label().to_string(),
                    c.params.to_string(),
                    fmt_pct(c.stats.mean_rel_pct),
                ]);
            }
        }
        t.print();
        println!();

        // Compactness summary at the last checkpoint.
        let last = |k: MethodKind| {
            results.iter().find(|(kk, _)| *kk == k).and_then(|(_, c)| c.last().cloned())
        };
        if let (Some(iso), Some(st), Some(qs)) =
            (last(MethodKind::Isomer), last(MethodKind::STHoles), last(MethodKind::QuickSel))
        {
            println!(
                "shape check at n={}: ISOMER {} params, STHoles {} params, QuickSel {} params (paper: ISOMER ≫ STHoles ≫ QuickSel)\n",
                qs.n, iso.params, st.params, qs.params
            );
        }
    }

    // §2.3 quote: ISOMER bucket growth on overlapping workloads. The
    // partition alone is refined (no frequency training) — growth is a
    // property of the bucket-splitting rule, not the optimizer.
    println!("=== §2.3 bucket growth: ISOMER bucket count vs observed queries ===");
    let table = instacart_table(scale.instacart_rows().min(50_000), 203);
    let mut gen =
        RectWorkload::new(table.domain().clone(), 29, ShiftMode::Random, CenterMode::DataRow)
            .with_width_frac(0.1, 0.4);
    let growth_n = if scale.fast { 100 } else { 300 };
    let mut partition =
        quicksel_baselines::partition::Partition::with_max_buckets(table.domain(), 2_000_000);
    let mut t = TextTable::new(vec!["n", "buckets"]);
    for (i, q) in gen.take_queries(&table, growth_n).iter().enumerate() {
        if partition.can_refine() {
            partition.refine(&q.rect);
        }
        let n = i + 1;
        if n % 50 == 0 || n == growth_n {
            t.row(vec![n.to_string(), partition.len().to_string()]);
        }
    }
    t.print();
    println!("(paper, real DMV data: 22,370 buckets @100 queries; 318,936 @300)");
}
