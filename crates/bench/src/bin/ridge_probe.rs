//! Diagnostic (not a paper experiment): sensitivity of the analytic solve
//! to an always-on Tikhonov ridge, in the ill-conditioned m ≈ n regime.

use quicksel_bench::driver::evaluate;
use quicksel_core::subpop::{build_subpopulations, workload_points};
use quicksel_core::train::build_qp;
use quicksel_core::UniformMixtureModel;
use quicksel_data::datasets::gaussian::gaussian_table;
use quicksel_data::workload::{CenterMode, QueryGenerator, RectWorkload, ShiftMode};
use quicksel_data::{mean_rel_error_pct, Estimate};
use quicksel_linalg::solve_spd;
use rand::SeedableRng;

struct Model(UniformMixtureModel);
impl Estimate for Model {
    fn name(&self) -> &'static str {
        "probe"
    }
    fn estimate(&self, rect: &quicksel_geometry::Rect) -> f64 {
        self.0.estimate(rect)
    }
    fn param_count(&self) -> usize {
        self.0.len()
    }
}

fn main() {
    let table = gaussian_table(2, 0.5, 50_000, 703);
    let mut gen =
        RectWorkload::new(table.domain().clone(), 53, ShiftMode::Random, CenterMode::DataRow)
            .with_width_frac(0.1, 0.4);
    for n in [50usize, 100, 200] {
        let train = gen.take_queries(&table, n);
        let test = gen.take_queries(&table, 100);
        for m in [n / 2, n, 2 * n] {
            let mut rng = rand::rngs::StdRng::seed_from_u64(1);
            let mut pool = Vec::new();
            for q in &train {
                pool.extend(workload_points(&q.rect, 10, &mut rng));
            }
            let subpops = build_subpopulations(table.domain(), &pool, m, 10, 1.2, &mut rng);
            let qp = build_qp(table.domain(), &subpops, &train);
            for ridge_exp in [0i32, -9, -7, -5, -3] {
                let lambda = 1e6;
                let mut sys = qp.a.gram();
                let mut system = qp.q.clone();
                system.add_scaled(lambda, &sys);
                if ridge_exp != 0 {
                    let ridge = system.trace() / m as f64 * 10f64.powi(ridge_exp);
                    system.add_diagonal(ridge);
                }
                let mut rhs = qp.a.t_matvec(&qp.s);
                for v in &mut rhs {
                    *v *= lambda;
                }
                sys = system;
                let w = solve_spd(&sys, &rhs).unwrap();
                let viol = qp.constraint_violation(&w);
                let model = Model(UniformMixtureModel::new(subpops.clone(), w));
                let stats = evaluate(&model, &test);
                println!(
                    "n={n:4} m={m:4} ridge=1e{ridge_exp:+} err={:7.2}% viol={viol:.2e}",
                    stats.mean_rel_pct
                );
                let _ = mean_rel_error_pct(&[]);
            }
        }
        println!();
    }
}
