//! Stage-level timing of one cold retrain at m=4000 (dev diagnostics).

use quicksel_core::subpop::{sample_centers, size_subpopulations, workload_points};
use quicksel_core::SubpopGrid;
use quicksel_data::datasets::gaussian::gaussian_table;
use quicksel_data::workload::{CenterMode, QueryGenerator, RectWorkload, ShiftMode};
use quicksel_linalg::{CholeskyFactor, RankUpdateSolver};
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    // Spin the workspace pool up (thread creation + first wake) before
    // the first timed stage, so one-time spin-up isn't attributed to
    // whichever stage happens to fan out first.
    let pool = quicksel_parallel::global();
    pool.warm_up();
    println!("threads      {:>8}", pool.threads());

    let m = 4000;
    let n = m / 4;
    let table = gaussian_table(3, 0.5, 20_000, 7171);
    let mut gen =
        RectWorkload::new(table.domain().clone(), 7172, ShiftMode::Random, CenterMode::DataRow)
            .with_width_frac(0.1, 0.4);
    let queries = gen.take_queries(&table, n);
    let mut rng = rand::rngs::StdRng::seed_from_u64(7173);
    let mut pool = Vec::new();
    for q in &queries {
        pool.extend(workload_points(&q.rect, 10, &mut rng));
    }
    let centers = sample_centers(&pool, m, &mut rng);

    let t = Instant::now();
    let subpops = size_subpopulations(table.domain(), &centers, 10, 1.2);
    println!("sizing       {:>8.1} ms", t.elapsed().as_secs_f64() * 1e3);

    let t = Instant::now();
    let grid = SubpopGrid::new(&subpops);
    println!("grid build   {:>8.1} ms", t.elapsed().as_secs_f64() * 1e3);

    let t = Instant::now();
    let q = grid.assemble_q();
    println!("assemble Q   {:>8.1} ms", t.elapsed().as_secs_f64() * 1e3);

    let t = Instant::now();
    let (a, s) = grid.assemble_a(&queries);
    println!("assemble A   {:>8.1} ms", t.elapsed().as_secs_f64() * 1e3);
    let nnz = a.as_slice().iter().filter(|v| **v != 0.0).count();
    println!("A nnz frac   {:>8.3}", nnz as f64 / (a.rows() * a.cols()) as f64);

    let t = Instant::now();
    let gram = a.gram();
    println!("gram         {:>8.1} ms", t.elapsed().as_secs_f64() * 1e3);

    let t = Instant::now();
    let ats = a.t_matvec(&s);
    let mut system = q.clone();
    system.add_scaled(1e6, &gram);
    system.add_diagonal(system.trace() / m as f64 * 1e-5);
    println!("system       {:>8.1} ms", t.elapsed().as_secs_f64() * 1e3);

    let t = Instant::now();
    let f = CholeskyFactor::new(&system).expect("spd");
    println!("factor       {:>8.1} ms", t.elapsed().as_secs_f64() * 1e3);

    let t = Instant::now();
    let fr = CholeskyFactor::new_reference(&system).expect("spd");
    println!("factor ref   {:>8.1} ms", t.elapsed().as_secs_f64() * 1e3);
    println!("factor diff  {:>8.2e}", f.l().max_abs_diff(fr.l()));

    let t = Instant::now();
    let rhs: Vec<f64> = ats.iter().map(|v| v * 1e6).collect();
    let w = f.solve(&rhs);
    println!("solve        {:>8.1} ms", t.elapsed().as_secs_f64() * 1e3);

    let t = Instant::now();
    let solver = RankUpdateSolver::new(&system, 1e6).expect("spd");
    let _w2 = solver.solve(&rhs).expect("solve");
    println!("solver(new+solve) {:>8.1} ms", t.elapsed().as_secs_f64() * 1e3);
    std::hint::black_box(w);
}
