//! Figure 7: robustness studies (§5.6).
//!
//! * (a) — error vs. data correlation,
//! * (b) — error under workload shift (random / sliding / none),
//! * (c) — error vs. model parameter count (fixed-m QuickSel),
//! * (d) — error vs. data dimension (AutoHist / AutoSample / QuickSel).
//!
//! Run with `cargo run -p quicksel-bench --release --bin fig7`.

use quicksel_bench::driver::evaluate;
use quicksel_bench::methods::{make_estimator, MethodKind, MethodOptions};
use quicksel_bench::{fmt_pct, Scale, TextTable};
use quicksel_core::{QuickSel, QuickSelConfig, RefinePolicy};
use quicksel_data::datasets::gaussian::gaussian_table;
use quicksel_data::workload::{CenterMode, QueryGenerator, RectWorkload, ShiftMode};
use quicksel_data::{mean_rel_error_pct, Estimate, Learn};

fn main() {
    let scale = Scale::from_env();
    fig7a(&scale);
    fig7b(&scale);
    fig7c(&scale);
    fig7d(&scale);
}

/// (a) Data correlation sweep: 100 training queries, 100 test queries.
fn fig7a(scale: &Scale) {
    println!("=== Fig 7a — data correlation vs error ===");
    let mut t = TextTable::new(vec!["correlation", "rel error"]);
    for rho in [0.0, 0.2, 0.4, 0.6, 0.8, 0.99] {
        let table = gaussian_table(2, rho, scale.gaussian_rows(), 701);
        let mut gen =
            RectWorkload::new(table.domain().clone(), 51, ShiftMode::Random, CenterMode::DataRow)
                .with_width_frac(0.1, 0.4);
        let train = gen.take_queries(&table, 100);
        let test = gen.take_queries(&table, 100);
        let mut qs = QuickSel::builder(table.domain().clone())
            .refine_policy(RefinePolicy::EveryK(100))
            .build();
        for q in &train {
            qs.observe(q);
        }
        let stats = evaluate(&qs, &test);
        t.row(vec![format!("{rho:.2}"), fmt_pct(stats.mean_rel_pct)]);
    }
    t.print();
    println!("(paper: flat, low error across all correlations)\n");
}

/// (b) Workload shifts over 1000 queries, testing on the next 10 after
/// each 100-query training prefix.
fn fig7b(scale: &Scale) {
    println!("=== Fig 7b — workload shift vs error ===");
    let total = if scale.fast { 300 } else { 1000 };
    let table = gaussian_table(2, 0.5, scale.gaussian_rows(), 702);
    let modes: [(&str, ShiftMode); 3] = [
        ("random shift", ShiftMode::Random),
        ("sliding shift", ShiftMode::Sliding { total }),
        ("no shift", ShiftMode::NoShift),
    ];
    let mut series: Vec<(&str, Vec<(usize, f64)>)> = Vec::new();
    for (label, mode) in modes {
        // Centers target the ±3σ box: the paper's rectangles sweep the
        // populated range of the normal distribution.
        let mut gen = RectWorkload::new(table.domain().clone(), 52, mode, CenterMode::Uniform)
            .with_width_frac(0.15, 0.5)
            .with_center_box(quicksel_geometry::Rect::from_bounds(&[(-3.0, 3.0), (-3.0, 3.0)]));
        let all = gen.take_queries(&table, total + 10);
        // max_subpops capped to keep the single-threaded solve tractable.
        let mut qs = QuickSel::builder(table.domain().clone())
            .refine_policy(RefinePolicy::EveryK(100))
            .max_subpops(1600)
            .build();
        let mut points = Vec::new();
        for n in (100..=total).step_by(100) {
            for q in &all[n - 100..n] {
                qs.observe(q);
            }
            let test = &all[n..(n + 10).min(all.len())];
            let pairs: Vec<(f64, f64)> =
                test.iter().map(|q| (q.selectivity, qs.estimate(&q.rect))).collect();
            points.push((n, mean_rel_error_pct(&pairs)));
        }
        series.push((label, points));
    }
    let mut t = TextTable::new(
        std::iter::once("n".to_string()).chain(series.iter().map(|(l, _)| l.to_string())).collect(),
    );
    for i in 0..series[0].1.len() {
        let mut row = vec![series[0].1[i].0.to_string()];
        for (_, pts) in &series {
            row.push(fmt_pct(pts[i].1));
        }
        t.row(row);
    }
    t.print();
    println!("(paper: random shift worst but converging; all low after ~100 queries)\n");
}

/// (c) Fixed model-parameter sweep.
fn fig7c(scale: &Scale) {
    println!("=== Fig 7c — model parameter count vs error ===");
    let table = gaussian_table(2, 0.5, scale.gaussian_rows(), 703);
    let train_n = if scale.fast { 100 } else { 400 };
    let mut gen =
        RectWorkload::new(table.domain().clone(), 53, ShiftMode::Random, CenterMode::DataRow)
            .with_width_frac(0.1, 0.4);
    let train = gen.take_queries(&table, train_n);
    let test = gen.take_queries(&table, 100);
    let mut t = TextTable::new(vec!["params (m)", "rel error"]);
    for m in [10usize, 25, 50, 100, 200, 400, 1000] {
        let mut cfg = QuickSelConfig::default().with_fixed_subpops(m);
        cfg.refine_policy = RefinePolicy::Manual;
        let mut qs = QuickSel::with_config(table.domain().clone(), cfg);
        for q in &train {
            qs.observe(q);
        }
        qs.refine().expect("training");
        let stats = evaluate(&qs, &test);
        t.row(vec![m.to_string(), fmt_pct(stats.mean_rel_pct)]);
    }
    t.print();
    println!("(paper: high error at m=10, flat once m ≥ 50)\n");
}

/// (d) Data-dimension sweep with equal budgets.
fn fig7d(scale: &Scale) {
    println!("=== Fig 7d — data dimension vs error (AutoHist/AutoSample/QuickSel) ===");
    let dims: &[usize] = if scale.fast { &[1, 2, 4, 6] } else { &[1, 2, 4, 6, 8, 10] };
    let budget = 1000;
    let train_n = if scale.fast { 200 } else { 500 };
    let mut t = TextTable::new(vec!["dim", "AutoHist", "AutoSample", "QuickSel"]);
    for &d in dims {
        let table = gaussian_table(d, 0.5, scale.gaussian_rows(), 704 + d as u64);
        let mut gen =
            RectWorkload::new(table.domain().clone(), 54, ShiftMode::Random, CenterMode::DataRow)
                .with_width_frac(0.2, 0.6);
        let train = gen.take_queries(&table, train_n);
        let test = gen.take_queries(&table, 100);
        let mut row = vec![d.to_string()];
        for kind in [MethodKind::AutoHist, MethodKind::AutoSample, MethodKind::QuickSel] {
            let err = if kind == MethodKind::QuickSel {
                let mut cfg = QuickSelConfig::default().with_fixed_subpops(budget);
                cfg.refine_policy = RefinePolicy::Manual;
                let mut qs = QuickSel::with_config(table.domain().clone(), cfg);
                for q in &train {
                    qs.observe(q);
                }
                qs.refine().expect("training");
                evaluate(&qs, &test).mean_rel_pct
            } else {
                let opts = MethodOptions { budget, ..Default::default() };
                let mut est = make_estimator(kind, table.domain(), &opts);
                est.sync_data(&table, table.row_count());
                evaluate(est.as_ref(), &test).mean_rel_pct
            };
            row.push(fmt_pct(err));
        }
        t.row(row);
    }
    t.print();
    println!("(paper: AutoHist degrades sharply with dimension; QuickSel stays lowest)");
}
