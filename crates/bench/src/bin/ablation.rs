//! Ablation study for QuickSel's design choices (not a paper figure; see
//! DESIGN.md §2.1):
//!
//! * points per observed query (paper fixes 10, §3.3 step 1),
//! * subpopulation overlap factor (the "slightly overlap" sizing rule),
//! * penalty weight λ (paper fixes 10⁶),
//! * the Tikhonov ridge (this implementation's addition).
//!
//! Run with `cargo run -p quicksel-bench --release --bin ablation`.

use quicksel_bench::driver::evaluate;
use quicksel_bench::{fmt_pct, Scale, TextTable};
use quicksel_core::{QuickSel, QuickSelConfig, RefinePolicy};
use quicksel_data::datasets::gaussian::gaussian_table;
use quicksel_data::workload::{CenterMode, QueryGenerator, RectWorkload, ShiftMode};
use quicksel_data::{Learn, ObservedQuery, Table};

fn run(table: &Table, train: &[ObservedQuery], test: &[ObservedQuery], cfg: QuickSelConfig) -> f64 {
    let mut qs = QuickSel::with_config(table.domain().clone(), cfg);
    for q in train {
        qs.observe(q);
    }
    qs.refine().expect("training");
    evaluate(&qs, test).mean_rel_pct
}

fn main() {
    let scale = Scale::from_env();
    let table = gaussian_table(2, 0.5, scale.gaussian_rows(), 4040);
    let mut gen =
        RectWorkload::new(table.domain().clone(), 61, ShiftMode::Random, CenterMode::DataRow)
            .with_width_frac(0.1, 0.4);
    let train = gen.take_queries(&table, 100);
    let test = gen.take_queries(&table, 100);
    let base = || QuickSelConfig { refine_policy: RefinePolicy::Manual, ..Default::default() };

    println!("=== Ablation: QuickSel design choices (100 train / 100 test queries) ===\n");

    println!("--- points generated per observed query (paper: 10) ---");
    let mut t = TextTable::new(vec!["points/query", "rel error"]);
    for p in [1usize, 2, 5, 10, 20, 40] {
        let mut cfg = base();
        cfg.points_per_query = p;
        t.row(vec![p.to_string(), fmt_pct(run(&table, &train, &test, cfg))]);
    }
    t.print();
    println!();

    println!("--- subpopulation overlap factor (ours: 1.2) ---");
    let mut t = TextTable::new(vec!["overlap", "rel error"]);
    for f in [0.4, 0.8, 1.0, 1.2, 1.6, 2.4] {
        let mut cfg = base();
        cfg.overlap_factor = f;
        t.row(vec![format!("{f:.1}"), fmt_pct(run(&table, &train, &test, cfg))]);
    }
    t.print();
    println!();

    println!("--- penalty weight λ (paper: 1e6) ---");
    let mut t = TextTable::new(vec!["lambda", "rel error"]);
    for e in [2i32, 4, 6, 8] {
        let mut cfg = base();
        cfg.lambda = 10f64.powi(e);
        t.row(vec![format!("1e{e}"), fmt_pct(run(&table, &train, &test, cfg))]);
    }
    t.print();
    println!();

    println!("--- Tikhonov ridge (ours: 1e-5 relative; 0 = paper's exact form) ---");
    let mut t = TextTable::new(vec!["ridge", "rel error"]);
    for r in [0.0, 1e-9, 1e-7, 1e-5, 1e-3] {
        let mut cfg = base();
        cfg.ridge_rel = r;
        t.row(vec![format!("{r:.0e}"), fmt_pct(run(&table, &train, &test, cfg))]);
    }
    t.print();
    println!();

    println!("--- subpopulations per query (paper: 4, capped at 4000) ---");
    let mut t = TextTable::new(vec!["subpops/query", "rel error"]);
    for s in [1usize, 2, 4, 8] {
        let mut cfg = base();
        cfg.subpops_per_query = s;
        t.row(vec![s.to_string(), fmt_pct(run(&table, &train, &test, cfg))]);
    }
    t.print();
}
