//! Figure 3: QuickSel vs. state-of-the-art query-driven histograms.
//!
//! * (a)/(d) — number of observed queries vs. per-query training time,
//! * (b)/(e) — per-query time budget vs. relative error,
//! * (c)/(f) — target error vs. time required (ISOMER vs. QuickSel).
//!
//! Datasets: DMV-like (a–c) and Instacart-like (d–f). Run with
//! `cargo run -p quicksel-bench --release --bin fig3` (`QS_FAST=1` for a
//! coarser grid).

use quicksel_bench::driver::stream_with_checkpoints;
use quicksel_bench::methods::{make_estimator, MethodKind, MethodOptions};
use quicksel_bench::{fmt_duration_ms, fmt_pct, Scale, TextTable};
use quicksel_data::datasets::{dmv_table, instacart_table};
use quicksel_data::workload::{CenterMode, QueryGenerator, RectWorkload, ShiftMode};
use quicksel_data::Table;

fn main() {
    let scale = Scale::from_env();
    let datasets: Vec<(&str, Table)> = vec![
        ("DMV", dmv_table(scale.dmv_rows(), 101)),
        ("Instacart", instacart_table(scale.instacart_rows(), 102)),
    ];
    let max_n = if scale.fast { 40 } else { 100 };
    let step = 10;
    let checkpoints: Vec<usize> = (step..=max_n).step_by(step).collect();

    for (name, table) in &datasets {
        println!("=== Figure 3 — dataset: {name} ({} rows) ===\n", table.row_count());
        let mut gen = RectWorkload::new(
            table.domain().clone(),
            7 + name.len() as u64,
            ShiftMode::Random,
            CenterMode::DataRow,
        )
        .with_width_frac(0.1, 0.4);
        let train = gen.take_queries(table, max_n);
        let test = gen.take_queries(table, 100);

        let mut results = Vec::new();
        for kind in MethodKind::query_driven() {
            let opts = MethodOptions { budget: 2000, ..Default::default() };
            let mut est = make_estimator(kind, table.domain(), &opts);
            let cps = stream_with_checkpoints(est.as_mut(), &train, &test, &checkpoints);
            results.push((kind, cps));
        }

        // (a)/(d): #queries vs per-query training time.
        println!(
            "--- Fig 3{}: #observed queries vs per-query train time ---",
            if *name == "DMV" { "a" } else { "d" }
        );
        let mut t = TextTable::new(
            std::iter::once("n".to_string())
                .chain(results.iter().map(|(k, _)| k.label().to_string()))
                .collect(),
        );
        for (ci, &n) in checkpoints.iter().enumerate() {
            let mut row = vec![n.to_string()];
            for (_, cps) in &results {
                row.push(
                    cps.get(ci).map_or("-".into(), |c| fmt_duration_ms(c.window_per_query_ms)),
                );
            }
            t.row(row);
        }
        t.print();
        println!();

        // (b)/(e): per-query time vs error.
        println!(
            "--- Fig 3{}: mean per-query time vs relative error ---",
            if *name == "DMV" { "b" } else { "e" }
        );
        let mut t = TextTable::new(vec!["method", "mean ms/query", "rel error"]);
        for (kind, cps) in &results {
            if let Some(last) = cps.last() {
                t.row(vec![
                    kind.label().to_string(),
                    fmt_duration_ms(last.cumulative_ms / last.n as f64),
                    fmt_pct(last.stats.mean_rel_pct),
                ]);
            }
        }
        t.print();
        println!();

        // (c)/(f): error target vs time required (ISOMER vs QuickSel).
        println!(
            "--- Fig 3{}: target error vs training time needed ---",
            if *name == "DMV" { "c" } else { "f" }
        );
        let mut t = TextTable::new(vec!["target err", "ISOMER", "QuickSel"]);
        let iso = &results.iter().find(|(k, _)| *k == MethodKind::Isomer).unwrap().1;
        let qs = &results.iter().find(|(k, _)| *k == MethodKind::QuickSel).unwrap().1;
        for target in [30.0, 25.0, 20.0, 15.0, 10.0] {
            let time_for = |cps: &[quicksel_bench::driver::StreamCheckpoint]| {
                cps.iter()
                    .find(|c| c.stats.mean_rel_pct <= target)
                    .map(|c| fmt_duration_ms(c.cumulative_ms))
                    .unwrap_or_else(|| "not reached".into())
            };
            t.row(vec![fmt_pct(target), time_for(iso), time_for(qs)]);
        }
        t.print();
        println!();

        // Paper-shape summary.
        let iso_last = iso.last().unwrap();
        let qs_last = qs.last().unwrap();
        println!(
            "shape check: at n={} — ISOMER {:.3} ms/query ({} params), QuickSel {:.3} ms/query ({} params), speedup {:.1}x\n",
            qs_last.n,
            iso_last.cumulative_ms / iso_last.n as f64,
            iso_last.params,
            qs_last.cumulative_ms / qs_last.n as f64,
            qs_last.params,
            iso_last.cumulative_ms / qs_last.cumulative_ms.max(1e-9),
        );
    }
}
