//! Figure 6: QuickSel's analytic QP vs. standard (iterative) QP (§5.4).
//!
//! For growing numbers of observed queries, assemble the Theorem-1 QP and
//! time (i) the closed-form penalized solve and (ii) the OSQP-style ADMM
//! solver on the standard constrained program.
//!
//! Run with `cargo run -p quicksel-bench --release --bin fig6`.

use quicksel_bench::{fmt_duration_ms, Scale, TextTable};
use quicksel_core::subpop::build_subpopulations;
use quicksel_core::train::build_qp;
use quicksel_data::datasets::gaussian::gaussian_table;
use quicksel_data::workload::{CenterMode, QueryGenerator, RectWorkload, ShiftMode};
use quicksel_linalg::{solve_analytic, AdmmQp};
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let scale = Scale::from_env();
    let table = gaussian_table(2, 0.5, scale.gaussian_rows(), 1860);
    let mut gen =
        RectWorkload::new(table.domain().clone(), 41, ShiftMode::Random, CenterMode::DataRow)
            .with_width_frac(0.1, 0.4);

    // The paper sweeps 0..1000 observed queries with m = min(4n, 4000);
    // the dense kernels here are single-threaded, so the default grid stops
    // at m = 1600 — the separation between the two solvers is already
    // decisive there (and scaled runs only widen it).
    let ns: &[usize] = if scale.fast { &[25, 50, 100, 200] } else { &[25, 50, 100, 200, 300, 400] };
    let max_n = *ns.last().unwrap();
    let queries = gen.take_queries(&table, max_n);

    println!("=== Figure 6 — standard QP vs QuickSel's analytic QP ===\n");
    let mut t = TextTable::new(vec![
        "n queries",
        "m params",
        "analytic (QuickSel)",
        "ADMM (standard QP)",
        "admm iters",
        "slowdown",
    ]);
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    for &n in ns {
        // §3.3 pipeline at this query count.
        let mut pool = Vec::new();
        for q in &queries[..n] {
            pool.extend(quicksel_core::subpop::workload_points(&q.rect, 10, &mut rng));
        }
        let m = (4 * n).min(4000);
        let subpops = build_subpopulations(table.domain(), &pool, m, 10, 1.2, &mut rng);
        let qp = build_qp(table.domain(), &subpops, &queries[..n]);

        let t0 = Instant::now();
        let w_a = solve_analytic(&qp, 1e6, quicksel_linalg::qp::DEFAULT_RIDGE_REL)
            .expect("analytic solve");
        let analytic_ms = t0.elapsed().as_secs_f64() * 1e3;

        let t1 = Instant::now();
        let admm = AdmmQp::default().solve(&qp).expect("admm solve");
        let admm_ms = t1.elapsed().as_secs_f64() * 1e3;

        // Both must satisfy the observations.
        let va = qp.constraint_violation(&w_a);
        let vi = qp.constraint_violation(&admm.w);
        assert!(va < 1e-2, "analytic violation {va}");
        assert!(vi < 1e-2, "admm violation {vi}");

        t.row(vec![
            n.to_string(),
            subpops.len().to_string(),
            fmt_duration_ms(analytic_ms),
            fmt_duration_ms(admm_ms),
            admm.iterations.to_string(),
            format!("{:.1}x", admm_ms / analytic_ms.max(1e-9)),
        ]);
    }
    t.print();
    println!(
        "\n(paper: the analytic form was 1.5x–17.2x faster, growing with n; 8.36x at 1000 queries)"
    );
}
