//! Crash-consistency torture harness.
//!
//! Sweeps a mixed ingest / estimate / checkpoint workload with a fault
//! injected at **every** persist-op index, recovery faulted at every
//! read-op index, and a live wire session cut at every frame boundary
//! (and mid-frame), across several seeds. Everything is deterministic:
//! faults come from `quicksel::fault::FaultPlan` (a pure function of
//! seed and global op index), so any reported violation replays exactly
//! from its `(seed, op)` pair.
//!
//! The invariants checked, per scenario:
//!
//! 1. **No panic, ever.** Every fault surfaces as a typed error.
//! 2. **Acked implies durable.** After a simulated crash (the process
//!    drops the service with no final checkpoint), a fault-free
//!    recovery reproduces — `==`, not approximately — the state of a
//!    fresh reference service fed *exactly the acknowledged batches* in
//!    order: same estimates on a probe set, same ingest counters, same
//!    refine cadence. Batches refused with a typed error may be lost
//!    (the caller was told); batches acked may not, including every
//!    batch acked before a degraded-mode transition.
//! 3. **Recovery under read faults degrades, never corrupts.** A
//!    corrupted or unreadable checkpoint/WAL read during recovery may
//!    shrink what comes back (torn tails truncate; bad checkpoints fall
//!    back to older ones) but never invents rows, never panics, and
//!    never yields out-of-range estimates.
//! 4. **A cut connection never wounds the server.** After every
//!    prefix-of-bytes disconnect, a fresh clean client round-trips
//!    successfully and the server's counters stay coherent.
//! 5. **Replication never invents state.** With the replication stream
//!    cut at every response boundary, a sync fails with a typed error,
//!    never panics, never publishes rows the primary doesn't have, and
//!    a clean retry converges to `==` the shipped state. With the
//!    primary killed at every persist-op index and restarted, a fresh
//!    replica serves `==` whatever the restart recovered.
//!
//! Budget knobs (all env vars, for CI smoke runs):
//!
//! * `TORTURE_SEEDS`    — how many seeds to sweep (default 3)
//! * `TORTURE_BATCHES`  — feedback batches per scenario (default 12)
//! * `TORTURE_MAX_OPS`  — cap on swept op indices per phase (default all)
//!
//! Exits non-zero, listing every violation, if any invariant breaks.

use quicksel::fault::{mix, FaultPlan, FaultStream};
use quicksel::net::proto::{self, Request, Response};
use quicksel::net::{serve, NetClient, ServerConfig};
use quicksel::prelude::*;
use quicksel::replica::{Conn, Dialer};
use quicksel::service::HealthState;
use quicksel::{
    DurabilityOptions, ReplicaAgent, ReplicaBackend, ReplicaOptions, SelectivityService,
};
use std::io::Write as _;
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

// ---------------------------------------------------------------------
// Budget + scratch plumbing
// ---------------------------------------------------------------------

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

struct Budget {
    seeds: u64,
    batches: usize,
    max_ops: u64,
}

impl Budget {
    fn from_env() -> Self {
        Budget {
            seeds: env_u64("TORTURE_SEEDS", 3).max(1),
            batches: env_u64("TORTURE_BATCHES", 12).max(4) as usize,
            max_ops: env_u64("TORTURE_MAX_OPS", u64::MAX).max(1),
        }
    }
}

/// One failed invariant; carries enough to replay the scenario.
struct Violation {
    phase: &'static str,
    seed: u64,
    detail: String,
}

struct Scratch {
    root: PathBuf,
    next: u64,
}

impl Scratch {
    fn new() -> Self {
        let root = std::env::temp_dir().join(format!("quicksel-torture-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).expect("create scratch root");
        Scratch { root, next: 0 }
    }

    /// A fresh, empty directory for one scenario.
    fn dir(&mut self, tag: &str) -> PathBuf {
        let dir = self.root.join(format!("{tag}-{}", self.next));
        self.next += 1;
        std::fs::create_dir_all(&dir).expect("create scenario dir");
        dir
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).expect("create copy target");
    for entry in std::fs::read_dir(src).expect("read src").filter_map(|e| e.ok()) {
        let from = entry.path();
        let to = dst.join(entry.file_name());
        if from.is_dir() {
            copy_dir(&from, &to);
        } else {
            std::fs::copy(&from, &to).expect("copy file");
        }
    }
}

// ---------------------------------------------------------------------
// The deterministic workload
// ---------------------------------------------------------------------

fn domain() -> Domain {
    Domain::of_reals(&[("x", 0.0, 10.0), ("y", 0.0, 10.0)])
}

fn learner(seed: u64) -> QuickSel {
    // Small fixed model + EveryK refines: fast, deterministic, and the
    // refine cadence itself becomes part of the recovery contract.
    QuickSel::builder(domain())
        .refine_policy(RefinePolicy::EveryK(4))
        .fixed_subpops(16)
        .seed(seed)
        .build()
}

/// Deterministic feedback batch `i` for `seed`, two observations each.
fn batch(seed: u64, i: usize) -> Vec<ObservedQuery> {
    (0..2)
        .map(|j| {
            let k = mix(seed, (i * 2 + j) as u64);
            let lo_x = (k % 70) as f64 * 0.1;
            let lo_y = (k / 70 % 60) as f64 * 0.1;
            let len = 1.0 + (k % 5) as f64 * 0.7;
            let rect = Rect::from_bounds(&[
                (lo_x, (lo_x + len).min(10.0)),
                (lo_y, (lo_y + len).min(10.0)),
            ]);
            ObservedQuery::new(rect, (k % 11) as f64 / 10.0)
        })
        .collect()
}

/// A fixed probe set per seed; wide enough to touch trained regions.
fn probe_set(seed: u64) -> Vec<Rect> {
    (0..25)
        .map(|k| {
            let h = mix(seed ^ 0xABCD, k);
            let lo_x = (h % 80) as f64 * 0.1;
            let lo_y = (h / 80 % 80) as f64 * 0.1;
            let len = 0.5 + (h % 7) as f64 * 1.1;
            Rect::from_bounds(&[(lo_x, (lo_x + len).min(10.0)), (lo_y, (lo_y + len).min(10.0))])
        })
        .collect()
}

/// Durability tuned for the harness: checkpoints every 6 rows (so a
/// `batches`-long run crosses several checkpoint/rotate cycles), quick
/// degraded probes, the interval trigger disabled for determinism.
fn durability(fault: FaultPlan) -> DurabilityOptions {
    DurabilityOptions {
        checkpoint_rows: 6,
        checkpoint_interval: Duration::from_secs(100_000),
        keep_checkpoints: 2,
        degrade_after: 2,
        probe_backoff: Duration::from_millis(1),
        probe_backoff_max: Duration::from_millis(8),
        fault,
        ..DurabilityOptions::default()
    }
}

/// What one faulted durable run observed before its simulated crash.
#[derive(Default)]
struct RunOutcome {
    /// Batch indices the service *acknowledged* (rows ingested + WAL'd).
    acked: Vec<usize>,
    /// Batch indices refused with a typed error (any cause).
    refused: Vec<usize>,
    /// Did the shard report `Degraded` at any point?
    saw_degraded: bool,
    /// `open_durable` itself failed (fault on the initial segment open).
    open_failed: bool,
}

/// Runs the mixed workload against a durable service with `fault`
/// armed, then simulates a crash by dropping the service with no final
/// checkpoint. Panics are deliberately NOT caught: invariant 1 says
/// they must never happen, and a panic fails the whole harness loudly.
fn run_durable(dir: &Path, seed: u64, fault: FaultPlan, batches: usize) -> RunOutcome {
    let mut out = RunOutcome::default();
    let service = match SelectivityService::open_durable(dir, durability(fault), || learner(seed)) {
        Ok((service, _recovery)) => service,
        Err(_) => {
            out.open_failed = true;
            return out;
        }
    };
    let probes = probe_set(seed);
    for i in 0..batches {
        match service.observe_batch(&batch(seed, i)) {
            // Solver failures happen *after* ingest + WAL append: the
            // rows are durable, so the batch counts as acked.
            Ok(_) | Err(EstimatorError::Solver(_)) => out.acked.push(i),
            Err(EstimatorError::Degraded { .. }) => {
                out.refused.push(i);
                out.saw_degraded = true;
                // Give the backoff-spaced write probe a chance to fire
                // on a later attempt.
                std::thread::sleep(Duration::from_millis(3));
            }
            Err(_) => out.refused.push(i),
        }
        if i % 3 == 2 {
            // Interleaved reads: estimates must serve through every
            // fault and stay in range.
            for v in service.estimate_many(&probes) {
                assert!((0.0..=1.0).contains(&v), "mid-run estimate out of range: {v}");
            }
        }
        if service.health() == HealthState::Degraded {
            out.saw_degraded = true;
        }
    }
    // Crash: drop without checkpoint_now(); whatever was acked must
    // survive on the strength of the WAL alone.
    out
}

/// The reference: a fresh **non-durable** service fed exactly `acked`,
/// in order. Recovery of the faulted run must match this exactly.
fn reference(seed: u64, acked: &[usize]) -> (Vec<f64>, u64, u64, u64) {
    let service = SelectivityService::new(learner(seed));
    for &i in acked {
        match service.observe_batch(&batch(seed, i)) {
            Ok(_) | Err(EstimatorError::Solver(_)) => {}
            Err(e) => panic!("reference ingest of batch {i} failed: {e}"),
        }
    }
    let estimates: Vec<f64> = probe_set(seed).iter().map(|r| service.estimate(r)).collect();
    let stats = service.stats();
    (estimates, stats.batches_ingested, stats.queries_ingested, stats.refines)
}

/// Fault-free recovery of `dir`, compared `==` against the reference
/// built from the acked set. Returns an error string on mismatch.
fn check_recovery(dir: &Path, seed: u64, acked: &[usize]) -> Result<(), String> {
    let (recovered, _report) =
        SelectivityService::open_durable(dir, durability(FaultPlan::disabled()), || learner(seed))
            .map_err(|e| format!("fault-free recovery failed: {e}"))?;
    let stats = recovered.stats();
    let got: Vec<f64> = probe_set(seed).iter().map(|r| recovered.estimate(r)).collect();
    let (want_est, want_batches, want_rows, want_refines) = reference(seed, acked);
    if stats.batches_ingested != want_batches || stats.queries_ingested != want_rows {
        return Err(format!(
            "acked data lost or invented: recovered {}/{} batches/rows, acked {}/{}",
            stats.batches_ingested, stats.queries_ingested, want_batches, want_rows
        ));
    }
    if stats.refines != want_refines {
        return Err(format!(
            "refine cadence diverged: recovered {} refines, reference {}",
            stats.refines, want_refines
        ));
    }
    if got != want_est {
        return Err("recovered estimates differ from the acked-batch reference".to_string());
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Phase 1: write-path faults at every persist-op index
// ---------------------------------------------------------------------

fn write_sweep(scratch: &mut Scratch, budget: &Budget, seed: u64, violations: &mut Vec<Violation>) {
    // Pass A: count the ops an uninterrupted run performs. The counting
    // plan never injects, so this run doubles as the all-acked case.
    let count = FaultPlan::count_only();
    let dir = scratch.dir("count");
    let outcome = run_durable(&dir, seed, count.clone(), budget.batches);
    let total_ops = count.ops_seen();
    assert!(outcome.acked.len() == budget.batches, "counting run must ack everything");
    if let Err(detail) = check_recovery(&dir, seed, &outcome.acked) {
        violations.push(Violation { phase: "write/baseline", seed, detail });
    }

    // Pass B: one scenario per op index — every WAL open, append,
    // checkpoint write, rename, and probe gets its turn to fail.
    let swept = total_ops.min(budget.max_ops);
    let mut acked_total = 0usize;
    let mut refused_total = 0usize;
    let mut degraded_runs = 0usize;
    for op in 0..swept {
        let dir = scratch.dir("write");
        let outcome = run_durable(&dir, seed, FaultPlan::nth(seed, op), budget.batches);
        acked_total += outcome.acked.len();
        refused_total += outcome.refused.len();
        degraded_runs += usize::from(outcome.saw_degraded);
        if outcome.open_failed && !outcome.acked.is_empty() {
            violations.push(Violation {
                phase: "write",
                seed,
                detail: format!("op {op}: acked batches on a service that never opened"),
            });
            continue;
        }
        if let Err(detail) = check_recovery(&dir, seed, &outcome.acked) {
            violations.push(Violation {
                phase: "write",
                seed,
                detail: format!("op {op}: {detail}"),
            });
        }
    }
    println!(
        "  write sweep: {swept}/{total_ops} op indices, {acked_total} acked / {refused_total} \
         refused batches, {degraded_runs} runs saw Degraded"
    );
}

// ---------------------------------------------------------------------
// Phase 2: read-path faults at every recovery-op index
// ---------------------------------------------------------------------

fn read_sweep(scratch: &mut Scratch, budget: &Budget, seed: u64, violations: &mut Vec<Violation>) {
    // A clean run (crash-dropped, so both checkpoints and a WAL tail
    // exist on disk), then count the ops a clean recovery performs.
    let golden = scratch.dir("golden");
    let outcome = run_durable(&golden, seed, FaultPlan::disabled(), budget.batches);
    let total_rows = 2 * outcome.acked.len() as u64;
    let count = FaultPlan::count_only();
    {
        let probe_dir = scratch.dir("read-count");
        copy_dir(&golden, &probe_dir);
        let _ = SelectivityService::open_durable(&probe_dir, durability(count.clone()), || {
            learner(seed)
        });
    }
    let total_ops = count.ops_seen();

    // One scenario per recovery op: checkpoint reads and WAL segment
    // reads get corrupted or refused; the WAL open for the post-recovery
    // segment gets to fail too. Recovery mutates the directory (tail
    // truncation, new segment), so every scenario gets a fresh copy.
    let swept = total_ops.min(budget.max_ops);
    let mut recovered_ok = 0usize;
    let mut refused = 0usize;
    for op in 0..swept {
        let dir = scratch.dir("read");
        copy_dir(&golden, &dir);
        match SelectivityService::open_durable(&dir, durability(FaultPlan::nth(seed, op)), || {
            learner(seed)
        }) {
            Ok((service, _report)) => {
                recovered_ok += 1;
                let stats = service.stats();
                if stats.queries_ingested > total_rows {
                    violations.push(Violation {
                        phase: "read",
                        seed,
                        detail: format!(
                            "op {op}: recovery invented rows ({} > {total_rows})",
                            stats.queries_ingested
                        ),
                    });
                }
                for v in service.estimate_many(&probe_set(seed)) {
                    if !(0.0..=1.0).contains(&v) {
                        violations.push(Violation {
                            phase: "read",
                            seed,
                            detail: format!("op {op}: out-of-range estimate {v} after recovery"),
                        });
                        break;
                    }
                }
            }
            // A typed refusal is an acceptable outcome for a faulted
            // recovery; a panic would have aborted the harness.
            Err(_) => refused += 1,
        }
    }
    println!(
        "  read sweep: {swept}/{total_ops} op indices, {recovered_ok} recovered, {refused} refused"
    );
}

// ---------------------------------------------------------------------
// Phase 3: degraded-mode episodes (windowed fault bursts)
// ---------------------------------------------------------------------

fn degraded_sweep(
    scratch: &mut Scratch,
    budget: &Budget,
    seed: u64,
    violations: &mut Vec<Violation>,
) {
    // Fault bursts of several lengths at several start offsets: long
    // enough to trip the health machine (degrade_after = 2), finite so
    // the write probe eventually re-arms the shard. The invariant is
    // the same as the write sweep — nothing acked may be lost — plus:
    // a run whose burst ended must finish Healthy again.
    let mut episodes = 0usize;
    for &(start, len) in &[(1u64, 2u64), (1, 5), (4, 3), (7, 6), (2, 9)] {
        if start >= budget.max_ops {
            continue;
        }
        let dir = scratch.dir("degraded");
        let fault = FaultPlan::window(seed, start, len);
        let outcome = run_durable(&dir, seed, fault, budget.batches);
        episodes += usize::from(outcome.saw_degraded);
        if outcome.open_failed {
            continue;
        }
        if let Err(detail) = check_recovery(&dir, seed, &outcome.acked) {
            violations.push(Violation {
                phase: "degraded",
                seed,
                detail: format!("window({start},{len}): {detail}"),
            });
        }
    }
    println!("  degraded sweep: 5 fault windows, {episodes} tripped the health machine");
}

// ---------------------------------------------------------------------
// Phase 4: wire faults at every frame boundary
// ---------------------------------------------------------------------

/// The byte stream of one client session: hello + a mixed request
/// pipeline, each element one complete frame.
fn session_frames(seed: u64, batches: usize) -> Vec<Vec<u8>> {
    let mut frames = Vec::new();
    let frame = |body: &[u8]| {
        let mut buf = Vec::with_capacity(body.len() + 8);
        proto::write_frame(&mut buf, body).expect("vec write cannot fail");
        buf
    };
    frames.push(frame(&proto::encode_hello(1, proto::PROTO_VERSION)));
    let mut id = 1u64;
    for i in 0..batches.min(6) {
        frames.push(frame(
            &Request::ObserveBatch { id, table: "orders".to_string(), rows: batch(seed, i) }
                .encode(),
        ));
        id += 1;
        if i % 2 == 1 {
            frames.push(frame(
                &Request::EstimateMany {
                    id,
                    table: "orders".to_string(),
                    rects: probe_set(seed)[..4].to_vec(),
                }
                .encode(),
            ));
            id += 1;
        }
    }
    frames.push(frame(&Request::Stats { id }.encode()));
    frames
}

fn wire_sweep(budget: &Budget, seed: u64, violations: &mut Vec<Violation>) {
    let registry = EstimatorRegistry::new();
    let d = domain();
    registry.register_with("orders", d.clone(), 1, |i| {
        QuickSel::builder(d.clone())
            .refine_policy(RefinePolicy::EveryK(4))
            .fixed_subpops(16)
            .seed(seed + i as u64)
            .build()
    });
    let backend = Arc::new(registry);
    let handle = serve(
        Arc::clone(&backend),
        ServerConfig {
            shutdown_tick: Duration::from_millis(10),
            idle_timeout: Duration::from_millis(300),
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = handle.addr();

    // Every frame boundary, plus a mid-frame offset inside every frame:
    // the server must treat both as a disconnect, never as a wound.
    let frames = session_frames(seed, budget.batches);
    let mut cuts: Vec<(u64, bool)> = vec![(0, false)];
    let mut off = 0u64;
    for f in &frames {
        if f.len() > 5 {
            cuts.push((off + 5, true)); // mid-frame: header split from body
        }
        off += f.len() as u64;
        cuts.push((off, false)); // clean frame boundary
    }
    let swept = cuts.len().min(budget.max_ops as usize);
    let mid_frame_cuts = cuts[..swept].iter().filter(|&&(_, mid)| mid).count() as u64;
    for &(cut, _mid) in &cuts[..swept] {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(2))).expect("timeout");
        let mut faulty = FaultStream::new(stream).cut_write_after(cut);
        // Blind-write the session until the cut trips; never read a
        // response — the disconnect lands wherever the cut says.
        for frame in &frames {
            if faulty.write_all(frame).and_then(|()| faulty.flush()).is_err() {
                break;
            }
        }
        drop(faulty);
        // The server must shrug it off: a clean client still serves.
        match NetClient::connect(addr) {
            Ok(mut clean) => {
                if let Err(e) = clean.estimate_many("orders", &probe_set(seed)[..2]) {
                    violations.push(Violation {
                        phase: "wire",
                        seed,
                        detail: format!("cut@{cut}: clean client failed after cut: {e}"),
                    });
                }
            }
            Err(e) => violations.push(Violation {
                phase: "wire",
                seed,
                detail: format!("cut@{cut}: server unreachable after cut: {e}"),
            }),
        }
    }

    // A chunked (but uncut) stream — every write fragmented into tiny
    // pieces, exercising partial-frame reads server-side — must behave
    // exactly like a clean session: every batch acked, estimates equal
    // to the backend's own answers bit for bit.
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
    let mut chunky = FaultStream::new(stream).chunked(seed, 3);
    proto::write_frame(&mut chunky, &proto::encode_hello(1, proto::PROTO_VERSION))
        .expect("hello over chunked stream");
    chunky.flush().expect("flush");
    let ack = proto::read_frame(&mut chunky, proto::DEFAULT_MAX_FRAME).expect("hello ack");
    proto::decode_hello_ack(&ack).expect("handshake over chunked stream");
    let mut acked_rows = 0u64;
    for i in 0..budget.batches {
        let rows = batch(seed, i);
        let request =
            Request::ObserveBatch { id: 100 + i as u64, table: "orders".to_string(), rows };
        proto::write_frame(&mut chunky, &request.encode()).expect("observe over chunked stream");
        chunky.flush().expect("flush");
        let body = proto::read_frame(&mut chunky, proto::DEFAULT_MAX_FRAME).expect("ack frame");
        match Response::decode(&body).expect("decode ack") {
            Response::ObserveAck { accepted_rows, .. } => acked_rows += u64::from(accepted_rows),
            other => {
                violations.push(Violation {
                    phase: "wire",
                    seed,
                    detail: format!("chunked observe got {other:?}"),
                });
            }
        }
    }
    let probes = probe_set(seed);
    let request =
        Request::EstimateMany { id: 999, table: "orders".to_string(), rects: probes.clone() };
    proto::write_frame(&mut chunky, &request.encode()).expect("estimate over chunked stream");
    chunky.flush().expect("flush");
    let body = proto::read_frame(&mut chunky, proto::DEFAULT_MAX_FRAME).expect("estimate frame");
    match Response::decode(&body).expect("decode estimates") {
        Response::Estimates { values, .. } => {
            let direct = backend
                .get(&TableId::from("orders"))
                .expect("table registered")
                .estimate_many(&probes);
            if values != direct {
                violations.push(Violation {
                    phase: "wire",
                    seed,
                    detail: "chunked-stream estimates differ from in-process".to_string(),
                });
            }
        }
        other => violations.push(Violation {
            phase: "wire",
            seed,
            detail: format!("chunked estimate got {other:?}"),
        }),
    }
    drop(chunky);

    // A disconnect inside a frame is legitimately indistinguishable
    // from truncation (and is answered + closed as such), but a cut at
    // a clean frame boundary — and the chunked-but-whole session — must
    // read as an orderly close, never as corruption.
    let stats = handle.stats();
    if stats.decode_errors > mid_frame_cuts {
        violations.push(Violation {
            phase: "wire",
            seed,
            detail: format!(
                "{} decode errors from at most {mid_frame_cuts} mid-frame cuts: a clean-boundary \
                 disconnect was misread as corruption",
                stats.decode_errors
            ),
        });
    }
    println!(
        "  wire sweep: {swept} cut points + 1 chunked session, {} connections, {acked_rows} rows \
         acked over chunked stream",
        stats.connections_accepted
    );
}

// ---------------------------------------------------------------------
// Phase 5: replication faults — the stream cut at every response
// boundary, the primary killed at every persist-op index
// ---------------------------------------------------------------------

/// The registry-level durable workload (one table, one shard) with
/// `fault` armed, crash-dropped with no final checkpoint. Returns the
/// acked batch indices, or `None` if the table never opened.
fn run_registry(dir: &Path, seed: u64, fault: FaultPlan, batches: usize) -> Option<Vec<usize>> {
    let registry = EstimatorRegistry::new();
    let service =
        match registry.register_durable(dir, "orders", domain(), 1, durability(fault), |i| {
            learner(seed + i as u64)
        }) {
            Ok((service, _recovery)) => service,
            Err(_) => return None,
        };
    let mut acked = Vec::new();
    for i in 0..batches {
        match service.observe_batch(&batch(seed, i)) {
            Ok(_) | Err(EstimatorError::Solver(_)) => acked.push(i),
            Err(EstimatorError::Degraded { .. }) => {
                std::thread::sleep(Duration::from_millis(3));
            }
            Err(_) => {}
        }
    }
    Some(acked)
}

/// Fault-free registry recovery of `dir` — what a primary that was
/// `kill -9`'d and restarted serves.
fn recover_registry(dir: &Path, seed: u64) -> Result<Arc<EstimatorRegistry<QuickSel>>, String> {
    EstimatorRegistry::recover_from(dir, durability(FaultPlan::disabled()), |_, _, shard| {
        learner(seed + shard as u64)
    })
    .map(|(registry, _report)| Arc::new(registry))
    .map_err(|e| format!("fault-free primary recovery failed: {e}"))
}

/// A pass-through stream that records the cumulative byte offset after
/// every completed read — a superset of the replication stream's
/// response frame boundaries (`read_frame` reads header then body), so
/// cutting at each recorded offset covers every boundary and then some.
struct RecordingStream {
    inner: TcpStream,
    offsets: Arc<Mutex<Vec<u64>>>,
    total: u64,
}

impl std::io::Read for RecordingStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.total += n as u64;
        self.offsets.lock().expect("offset log").push(self.total);
        Ok(n)
    }
}

impl std::io::Write for RecordingStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.inner.write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

fn repl_tcp(addr: &str) -> std::io::Result<TcpStream> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    Ok(stream)
}

fn serve_small<B: quicksel::net::NetBackend + Send + Sync + 'static>(
    backend: Arc<B>,
) -> quicksel::ServerHandle {
    serve(
        backend,
        ServerConfig {
            workers: 2,
            shutdown_tick: Duration::from_millis(10),
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback")
}

fn replication_sweep(
    scratch: &mut Scratch,
    budget: &Budget,
    seed: u64,
    violations: &mut Vec<Violation>,
) {
    // The golden primary: a clean durable workload, crash-dropped,
    // recovered fault-free, served on loopback.
    let p_dir = scratch.dir("repl-primary");
    let acked = run_registry(&p_dir, seed, FaultPlan::disabled(), budget.batches)
        .expect("clean registry run must open");
    assert_eq!(acked.len(), budget.batches, "clean registry run must ack everything");
    let primary = match recover_registry(&p_dir, seed) {
        Ok(primary) => primary,
        Err(detail) => {
            violations.push(Violation { phase: "replication", seed, detail });
            return;
        }
    };
    let handle = serve_small(Arc::clone(&primary));
    let addr = handle.addr().to_string();
    let table = TableId::from("orders");
    let probes = probe_set(seed);
    let want = primary.get(&table).expect("primary table").estimate_many(&probes);
    let want_rows = primary.stats().total.queries_ingested;

    // Pass A: one clean sync through a recording stream, collecting
    // every read-completion offset. The replica it builds must already
    // be `==` the primary.
    let offsets = Arc::new(Mutex::new(vec![0u64]));
    {
        let r_dir = scratch.dir("repl-clean");
        let log = Arc::clone(&offsets);
        let dialer: Dialer = Box::new(move |a: &str| {
            Ok(Box::new(RecordingStream {
                inner: repl_tcp(a)?,
                offsets: Arc::clone(&log),
                total: 0,
            }) as Box<dyn Conn>)
        });
        let mut options = ReplicaOptions::new(&addr, &r_dir);
        options.recover = durability(FaultPlan::disabled());
        let backend = Arc::new(ReplicaBackend::empty());
        let mut agent = ReplicaAgent::with_dialer(
            options,
            Arc::clone(&backend),
            move |_, _, shard| learner(seed + shard as u64),
            dialer,
        );
        match agent.sync_once() {
            Ok(report) if report.entries == 0 => {
                violations.push(Violation {
                    phase: "replication",
                    seed,
                    detail: "clean sync shipped an empty manifest".to_string(),
                });
                return;
            }
            Ok(_) => {}
            Err(e) => {
                violations.push(Violation {
                    phase: "replication",
                    seed,
                    detail: format!("clean sync failed: {e}"),
                });
                return;
            }
        }
        let got = backend.registry().get(&table).expect("replica table").estimate_many(&probes);
        if got != want {
            violations.push(Violation {
                phase: "replication",
                seed,
                detail: "clean replica diverged from the primary".to_string(),
            });
        }
    }

    // Pass B: cut the replication stream at every recorded offset. The
    // wounded sync must surface a typed error (or land after the last
    // needed byte), never panic, never publish rows the primary doesn't
    // have; a clean retry against the SAME mirror dir must converge to
    // `==` the last shipped state.
    let cuts: Vec<u64> = {
        let mut v = offsets.lock().expect("offset log").clone();
        v.dedup();
        v
    };
    let swept_cuts = cuts.len().min(budget.max_ops as usize);
    let mut first_sync_failed = 0usize;
    for &cut in &cuts[..swept_cuts] {
        let r_dir = scratch.dir("repl-cut");
        let armed = Arc::new(AtomicBool::new(true));
        let flag = Arc::clone(&armed);
        let dialer: Dialer = Box::new(move |a: &str| {
            let stream = repl_tcp(a)?;
            if flag.swap(false, Ordering::SeqCst) {
                Ok(Box::new(FaultStream::new(stream).cut_read_after(cut)) as Box<dyn Conn>)
            } else {
                Ok(Box::new(stream) as Box<dyn Conn>)
            }
        });
        let mut options = ReplicaOptions::new(&addr, &r_dir);
        options.recover = durability(FaultPlan::disabled());
        let backend = Arc::new(ReplicaBackend::empty());
        let mut agent = ReplicaAgent::with_dialer(
            options,
            Arc::clone(&backend),
            move |_, _, shard| learner(seed + shard as u64),
            dialer,
        );
        if agent.sync_once().is_err() {
            first_sync_failed += 1;
        }
        let mid_rows = backend.registry().stats().total.queries_ingested;
        if mid_rows > want_rows {
            violations.push(Violation {
                phase: "replication",
                seed,
                detail: format!("cut@{cut}: replica invented rows ({mid_rows} > {want_rows})"),
            });
        }
        match agent.sync_once() {
            Ok(_) => {
                let registry = backend.registry();
                let got = match registry.get(&table) {
                    Some(service) => service.estimate_many(&probes),
                    None => {
                        violations.push(Violation {
                            phase: "replication",
                            seed,
                            detail: format!("cut@{cut}: table missing after the clean retry"),
                        });
                        continue;
                    }
                };
                if got != want {
                    violations.push(Violation {
                        phase: "replication",
                        seed,
                        detail: format!("cut@{cut}: repaired replica diverged from the primary"),
                    });
                }
                let rows = registry.stats().total.queries_ingested;
                if rows != want_rows {
                    violations.push(Violation {
                        phase: "replication",
                        seed,
                        detail: format!(
                            "cut@{cut}: repaired replica holds {rows} rows, primary {want_rows}"
                        ),
                    });
                }
            }
            Err(e) => violations.push(Violation {
                phase: "replication",
                seed,
                detail: format!("cut@{cut}: clean retry failed: {e}"),
            }),
        }
    }

    // Pass C: the primary process dies at every persist-op index — the
    // `kill -9` analog landing inside any WAL append, checkpoint write,
    // or rename — restarts fault-free, and a fresh replica syncs from
    // it. Whatever state the restart recovered, the replica must serve
    // it `==`, and must never hold rows the workload didn't ack.
    let count = FaultPlan::count_only();
    {
        let dir = scratch.dir("repl-kill-count");
        let _ = run_registry(&dir, seed, count.clone(), budget.batches);
    }
    let total_ops = count.ops_seen();
    let swept_kills = total_ops.min(budget.max_ops);
    let mut synced = 0usize;
    let mut never_opened = 0usize;
    for op in 0..swept_kills {
        let p_dir = scratch.dir("repl-kill");
        let Some(acked) = run_registry(&p_dir, seed, FaultPlan::nth(seed, op), budget.batches)
        else {
            // The fault landed on the initial open: no primary ever
            // existed at this index, so there is nothing to replicate.
            never_opened += 1;
            continue;
        };
        let primary = match recover_registry(&p_dir, seed) {
            Ok(primary) => primary,
            Err(detail) => {
                violations.push(Violation {
                    phase: "replication",
                    seed,
                    detail: format!("op {op}: {detail}"),
                });
                continue;
            }
        };
        let p_handle = serve_small(Arc::clone(&primary));
        let r_dir = scratch.dir("repl-kill-replica");
        let mut options = ReplicaOptions::new(p_handle.addr().to_string(), &r_dir);
        options.recover = durability(FaultPlan::disabled());
        let backend = Arc::new(ReplicaBackend::empty());
        let mut agent = ReplicaAgent::new(options, Arc::clone(&backend), move |_, _, shard| {
            learner(seed + shard as u64)
        });
        match agent.sync_once() {
            Ok(_) => {
                synced += 1;
                let p_est = primary.get(&table).map(|s| s.estimate_many(&probes));
                let registry = backend.registry();
                let r_est = registry.get(&table).map(|s| s.estimate_many(&probes));
                if r_est != p_est {
                    violations.push(Violation {
                        phase: "replication",
                        seed,
                        detail: format!("op {op}: replica of the restarted primary diverged"),
                    });
                }
                let p_rows = primary.stats().total.queries_ingested;
                let r_rows = registry.stats().total.queries_ingested;
                if r_rows != p_rows {
                    violations.push(Violation {
                        phase: "replication",
                        seed,
                        detail: format!(
                            "op {op}: replica holds {r_rows} rows, restarted primary {p_rows}"
                        ),
                    });
                }
                if r_rows > 2 * acked.len() as u64 {
                    violations.push(Violation {
                        phase: "replication",
                        seed,
                        detail: format!(
                            "op {op}: replica invented rows ({r_rows} > {} acked)",
                            2 * acked.len()
                        ),
                    });
                }
            }
            Err(e) => violations.push(Violation {
                phase: "replication",
                seed,
                detail: format!("op {op}: sync against a healthy restarted primary failed: {e}"),
            }),
        }
    }
    println!(
        "  replication sweep: {swept_cuts} stream cuts ({first_sync_failed} wounded first syncs, \
         all repaired), {swept_kills}/{total_ops} primary-death op indices ({never_opened} never \
         opened, {synced} synced)"
    );
}

// ---------------------------------------------------------------------

fn main() {
    let budget = Budget::from_env();
    let mut scratch = Scratch::new();
    let mut violations = Vec::new();
    println!(
        "torture: {} seed(s), {} batches/scenario, op cap {}",
        budget.seeds,
        budget.batches,
        if budget.max_ops == u64::MAX { "none".to_string() } else { budget.max_ops.to_string() }
    );

    for seed in 1..=budget.seeds {
        println!("seed {seed}:");
        write_sweep(&mut scratch, &budget, seed, &mut violations);
        read_sweep(&mut scratch, &budget, seed, &mut violations);
        degraded_sweep(&mut scratch, &budget, seed, &mut violations);
        wire_sweep(&budget, seed, &mut violations);
        replication_sweep(&mut scratch, &budget, seed, &mut violations);
    }

    if violations.is_empty() {
        println!("torture: all invariants held");
    } else {
        println!("torture: {} violation(s)", violations.len());
        for v in &violations {
            println!("  [{}] seed {}: {}", v.phase, v.seed, v.detail);
        }
        std::process::exit(1);
    }
}
