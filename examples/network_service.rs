//! End-to-end networked serving: a durable estimator registry behind a
//! loopback TCP server, a client streaming feedback and fetching
//! estimates over the wire, an explicit checkpoint, and a graceful
//! drain.
//!
//! ```sh
//! cargo run --release --example network_service
//! ```
//!
//! The walk-through:
//! 1. open a **durable** registry (checkpoint + WAL per shard) and
//!    register a table,
//! 2. serve it with [`quicksel::net::serve`] on an ephemeral port,
//! 3. connect a [`NetClient`], stream feedback batches (pipelined, ack
//!    watermarks), and fetch estimates,
//! 4. verify the wire answers equal the in-process answers bit-for-bit,
//! 5. force a checkpoint over the wire, then shut down gracefully.

use quicksel::net::{serve, NetClient, ServerConfig};
use quicksel::prelude::*;
use quicksel::{DurabilityOptions, EstimatorRegistry, TableId};
use std::sync::Arc;

fn main() {
    let dir = std::env::temp_dir().join(format!("qs-net-example-{}", std::process::id()));

    // 1. A durable registry: feedback is WAL-logged, models checkpoint.
    let registry: Arc<EstimatorRegistry<QuickSel>> = Arc::new(EstimatorRegistry::new());
    let domain = Domain::of_reals(&[("hour", 0.0, 24.0), ("amount", 0.0, 500.0)]);
    let d = domain.clone();
    registry
        .register_durable(&dir, "orders", domain.clone(), 2, DurabilityOptions::default(), |i| {
            QuickSel::builder(d.clone()).fixed_subpops(64).seed(i as u64).build()
        })
        .expect("register durable table");

    // 2. Serve it. Port 0 picks an ephemeral port; admission control
    //    allows 2k feedback rows/s per table with a 512-row burst.
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        ingest_rows_per_s: 2000.0,
        ingest_burst: 512.0,
        ..ServerConfig::default()
    };
    let mut handle = serve(Arc::clone(&registry), config).expect("bind server");
    println!("serving on {}", handle.addr());

    // 3. A client: discover tables, stream feedback, estimate.
    let mut client = NetClient::connect(handle.addr()).expect("connect");
    println!("negotiated protocol v{}", client.negotiated_version());
    for (name, domain) in client.list_tables().expect("list tables") {
        println!("table {name:?}: {} column(s)", domain.columns().len());
    }

    // Feedback: morning orders are small, evening orders are large.
    let batches: Vec<Vec<ObservedQuery>> = (0..10)
        .map(|b| {
            (0..8)
                .map(|k| {
                    let i = (b * 8 + k) as f64;
                    let hour = (i * 1.7) % 24.0;
                    let hi = if hour < 12.0 { 120.0 } else { 420.0 };
                    let rect = Rect::from_bounds(&[(hour, (hour + 3.0).min(24.0)), (0.0, hi)]);
                    ObservedQuery::new(rect, 0.08 + (i % 7.0) * 0.03)
                })
                .collect()
        })
        .collect();
    let outcome = client.observe_stream("orders", &batches, 20).expect("stream feedback");
    println!(
        "streamed {} rows (watermark {}, {} batch retries under admission control)",
        outcome.accepted_rows, outcome.watermark, outcome.retried_batches
    );

    let probes: Vec<Rect> = (0..6)
        .map(|i| {
            let hour = i as f64 * 4.0;
            Rect::from_bounds(&[(hour, hour + 4.0), (0.0, 250.0)])
        })
        .collect();
    let over_wire = client.estimate_many("orders", &probes).expect("estimate");
    for (rect, est) in probes.iter().zip(&over_wire) {
        let hours = rect.sides()[0];
        println!("  hours {:>4.1}-{:>4.1}: selectivity {est:.4}", hours.lo, hours.hi);
    }

    // 4. The wire answers ARE the registry's answers — bit for bit.
    let in_process = registry.get(&TableId::from("orders")).expect("table").estimate_many(&probes);
    assert_eq!(over_wire, in_process, "wire transport must be exact");
    println!("wire estimates == in-process estimates (bit-exact)");

    // 5. Checkpoint over the wire, inspect counters, drain gracefully.
    let durable = client.checkpoint_now().expect("checkpoint");
    println!("checkpointed {durable} durable table(s)");
    let stats = client.stats().expect("stats");
    println!(
        "server stats: {} rows ingested, {:.0} rows/s gauge, {} request(s) served",
        stats.queries_ingested, stats.ingest_rows_per_s, stats.requests_served
    );

    handle.shutdown();
    println!("server drained and stopped");

    let _ = std::fs::remove_dir_all(&dir);
}
