//! Drifting data: why query-driven beats periodic re-scanning (§5.3).
//!
//! ```sh
//! cargo run --release --example drifting_data
//! ```
//!
//! An append-heavy table's distribution drifts (correlation rises batch by
//! batch). A scan-based histogram only refreshes when its 20%-churn rule
//! fires and is stale in between; QuickSel absorbs every query's feedback
//! and tracks the drift continuously.

use quicksel::data::drift::{DriftEvent, GaussianDrift};
use quicksel::data::mean_rel_error_pct;
use quicksel::prelude::*;
use quicksel::AutoHist;

fn main() {
    let drift = GaussianDrift {
        initial_rows: 50_000,
        batch_rows: 10_000,
        queries_per_phase: 100,
        phases: 5,
        rho_step: 0.2,
        seed: 9,
    };
    let mut table = drift.initial_table();
    println!(
        "initial table: {} rows (correlation 0); {} batches of {} rows incoming\n",
        table.row_count(),
        drift.phases - 1,
        drift.batch_rows
    );

    let mut cfg = QuickSelConfig::default().with_fixed_subpops(100);
    cfg.refine_policy = RefinePolicy::EveryK(100);
    let mut quicksel = QuickSel::with_config(table.domain().clone(), cfg);
    let mut autohist = AutoHist::with_budget(table.domain().clone(), 100);
    autohist.sync_data(&table, table.row_count());

    let mut window: Vec<[(f64, f64); 2]> = Vec::new();
    let mut phase = 0usize;
    println!("{:>8}  {:>9}  {:>9}", "queries", "AutoHist", "QuickSel");
    for event in drift.events() {
        match event {
            DriftEvent::Query(rect) => {
                let truth = table.selectivity(&rect);
                window.push([(truth, autohist.estimate(&rect)), (truth, quicksel.estimate(&rect))]);
                quicksel.observe(&ObservedQuery::new(rect, truth));
                if window.len() == 100 {
                    let ah: Vec<(f64, f64)> = window.iter().map(|w| w[0]).collect();
                    let qs: Vec<(f64, f64)> = window.iter().map(|w| w[1]).collect();
                    phase += 1;
                    println!(
                        "{:>8}  {:>8.2}%  {:>8.2}%",
                        phase * 100,
                        mean_rel_error_pct(&ah),
                        mean_rel_error_pct(&qs)
                    );
                    window.clear();
                }
            }
            DriftEvent::Insert(rows) => {
                for r in &rows {
                    table.push_row(r);
                }
                // The 20%-churn rule decides whether a rescan happens.
                autohist.sync_data(&table, rows.len());
                println!(
                    "   [+{} rows inserted; AutoHist rebuilds so far: {}]",
                    rows.len(),
                    autohist.rebuild_count
                );
            }
        }
    }
    println!(
        "\nQuickSel needs no scans at all: it refined {} times from feedback alone.",
        quicksel.observed_count() / 100
    );
}
