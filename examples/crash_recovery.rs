//! Crash-recovery smoke driver for the durability subsystem.
//!
//! Two modes, built to be killed between them:
//!
//! ```sh
//! cargo run --release --example crash_recovery -- ingest  /tmp/qs-crash &
//! sleep 5 && kill -9 %1
//! cargo run --release --example crash_recovery -- recover /tmp/qs-crash
//! ```
//!
//! `ingest` opens a durable [`SelectivityService`] and feeds it a
//! deterministic feedback stream forever (checkpointing every
//! [`CHECKPOINT_ROWS`] rows, WAL-logging every batch) — the process is
//! meant to die by SIGKILL at an arbitrary byte of the stream.
//!
//! `recover` reopens the same directory, prints the recovery report,
//! and then **proves** the recovered estimator equals a never-crashed
//! run: the stream is deterministic, so a fresh in-memory service fed
//! exactly the rows the recovered one reports must produce bit-identical
//! estimates. Any divergence, lost row, or double-applied row exits
//! non-zero, which is what CI asserts on.

use quicksel::prelude::*;
use quicksel::{DurabilityOptions, SelectivityService};
use std::path::Path;
use std::process::ExitCode;
use std::time::Duration;

/// Rows between checkpoints while ingesting (batches are 2 rows, so a
/// checkpoint lands every 32 batches — frequent enough that a few
/// seconds of ingest crosses several checkpoint + WAL-prune cycles).
const CHECKPOINT_ROWS: u64 = 64;

fn domain() -> Domain {
    Domain::of_reals(&[("x", 0.0, 10.0), ("y", 0.0, 10.0)])
}

/// The learner under test: manual refine cadence and a fixed
/// subpopulation budget so post-recovery refines stay on the warm
/// (incremental) path, same as a long-lived production estimator.
fn learner() -> QuickSel {
    QuickSel::builder(domain())
        .refine_policy(RefinePolicy::Manual)
        .fixed_subpops(48)
        .seed(42)
        .build()
}

/// Batch `i` of the deterministic feedback stream: two observed
/// queries whose geometry and selectivity depend only on `i`.
fn batch(i: u64) -> Vec<ObservedQuery> {
    (0..2)
        .map(|j| {
            let k = i * 2 + j;
            let lo_x = (k * 13 % 70) as f64 * 0.1;
            let lo_y = (k * 29 % 60) as f64 * 0.1;
            let len = 0.8 + (k % 5) as f64 * 0.6;
            let rect = Rect::from_bounds(&[(lo_x, lo_x + len), (lo_y, lo_y + len)]);
            ObservedQuery::new(rect, (k % 10) as f64 * 0.1)
        })
        .collect()
}

/// Probes the recovered and reference services are compared on.
fn probes() -> Vec<Rect> {
    (0..40)
        .map(|k| {
            let lo = (k * 7 % 80) as f64 * 0.1;
            Rect::from_bounds(&[(lo, (lo + 1.5).min(10.0)), (0.0, 0.5 + (k % 9) as f64)])
        })
        .collect()
}

fn opts() -> DurabilityOptions {
    DurabilityOptions { checkpoint_rows: CHECKPOINT_ROWS, ..DurabilityOptions::default() }
}

fn ingest(dir: &Path) -> ExitCode {
    let (svc, rec) =
        SelectivityService::open_durable(dir, opts(), learner).expect("open durable service");
    // The stream position is wherever the last run got to: resume there
    // so a re-run keeps extending the same deterministic history.
    let mut i = svc.stats().batches_ingested;
    println!(
        "ingest: resuming at batch {i} (recovered_from_checkpoint={}, replayed_rows={})",
        rec.recovered_from_checkpoint, rec.replayed_rows
    );
    loop {
        svc.observe_batch(&batch(i)).expect("ingest batch");
        i += 1;
        if i % 100 == 0 {
            let stats = svc.stats();
            println!(
                "ingest: batch {i}, rows {}, checkpoints {}, wal {} B",
                stats.queries_ingested, stats.checkpoints_written, stats.wal_bytes
            );
        }
        // Pace the stream so a few seconds of wall clock spans many
        // checkpoint cycles and the SIGKILL lands mid-stream.
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn recover(dir: &Path) -> ExitCode {
    let (svc, rec) = match SelectivityService::<QuickSel>::open_durable(dir, opts(), learner) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("recover: FAILED to open {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    };
    let stats = svc.stats();
    println!(
        "recover: checkpoint={} replayed_batches={} replayed_rows={} truncated_wal_bytes={} \
         checkpoints_skipped={}",
        rec.recovered_from_checkpoint,
        rec.replayed_batches,
        rec.replayed_rows,
        rec.truncated_wal_bytes,
        rec.checkpoints_skipped
    );
    println!(
        "recover: rows={} batches={} refines={} version={}",
        stats.queries_ingested,
        stats.batches_ingested,
        stats.refines,
        svc.version()
    );
    if rec.replay_failures > 0 {
        eprintln!("recover: FAILED — {} WAL batches failed to re-apply", rec.replay_failures);
        return ExitCode::FAILURE;
    }
    if stats.queries_ingested != stats.batches_ingested * 2 {
        eprintln!("recover: FAILED — row/batch accounting is torn");
        return ExitCode::FAILURE;
    }

    // The decisive check: replay the deterministic stream into a fresh
    // in-memory service and demand bit-identical estimates. A lost or
    // double-applied row anywhere in checkpoint + WAL replay shifts the
    // refine trajectory and shows up here.
    let reference = SelectivityService::new(learner());
    for i in 0..stats.batches_ingested {
        reference.observe_batch(&batch(i)).expect("reference ingest");
    }
    let probe_set = probes();
    let recovered = svc.snapshot().estimate_many(&probe_set);
    let expected = reference.snapshot().estimate_many(&probe_set);
    if recovered != expected {
        eprintln!("recover: FAILED — estimates diverged from an uninterrupted run");
        return ExitCode::FAILURE;
    }
    // And the recovered service keeps working: one more batch trains
    // and republishes.
    let version = svc.version();
    svc.observe_batch(&batch(stats.batches_ingested)).expect("post-recovery ingest");
    if svc.version() <= version {
        eprintln!("recover: FAILED — post-recovery ingest did not publish");
        return ExitCode::FAILURE;
    }
    println!("recover: OK — {} rows verified against an uninterrupted run", stats.queries_ingested);
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("ingest") if args.len() == 3 => ingest(Path::new(&args[2])),
        Some("recover") if args.len() == 3 => recover(Path::new(&args[2])),
        _ => {
            eprintln!("usage: crash_recovery <ingest|recover> <dir>");
            ExitCode::FAILURE
        }
    }
}
