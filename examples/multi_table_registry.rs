//! Multi-table sharded serving: the production-shaped deployment of
//! QuickSel inside a database.
//!
//! ```sh
//! cargo run --release --example multi_table_registry
//! ```
//!
//! One `EstimatorRegistry` serves several tables; each table's feedback
//! is partitioned across shards by a deterministic predicate hash, so
//! one writer per shard retrains without contention while planner
//! threads estimate lock-free — here through per-thread
//! `CachedProvider`s that skip even the snapshot-swap atomics when the
//! model version is unchanged. Writer fan-out goes through the
//! workspace thread pool (`quicksel::parallel`), the same substrate the
//! training and estimation kernels parallelize on.

use quicksel::parallel::ThreadPool;
use quicksel::prelude::*;
use std::sync::Arc;
use std::thread;

const SHARDS: usize = 4;
const READER_THREADS: usize = 3;
const PROBES_PER_READER: usize = 5_000;

fn main() {
    // Three tables standing in for a small schema, each with its own
    // domain, registered with 4 estimator shards apiece.
    let registry = Arc::new(EstimatorRegistry::new());
    let tables: Vec<(TableId, Table)> = [("orders", 11u64), ("users", 22), ("items", 33)]
        .into_iter()
        .map(|(name, seed)| {
            let table = quicksel::data::datasets::gaussian_table(2, 0.4, 20_000, seed);
            let d = table.domain().clone();
            registry.register_with(name, d.clone(), SHARDS, |i| {
                QuickSel::builder(d.clone())
                    .refine_policy(RefinePolicy::Manual)
                    .fixed_subpops(128)
                    .seed(seed + i as u64)
                    .build()
            });
            (TableId::from(name), table)
        })
        .collect();

    // Write side: per-table feedback, pre-partitioned by owning shard,
    // one writer per shard fanned out on a shard-sized pool — the
    // contention-free path.
    let writer_pool = ThreadPool::new(SHARDS);
    for (id, table) in &tables {
        let service = registry.get(id).expect("registered");
        let mut workload =
            RectWorkload::new(table.domain().clone(), 5, ShiftMode::Random, CenterMode::DataRow)
                .with_width_frac(0.1, 0.4);
        let feedback = workload.take_queries(table, 120);
        let parts = service.partition_batch(&feedback);
        writer_pool.scope(|scope| {
            for (shard, part) in parts.iter().enumerate() {
                let service = Arc::clone(&service);
                scope.spawn(move || {
                    for batch in part.chunks(8) {
                        service.shard(shard).observe_batch(batch).expect("train");
                    }
                });
            }
        });
    }

    // Read side: planner threads, each with its own CachedProvider.
    let mut readers = Vec::new();
    for r in 0..READER_THREADS {
        let registry = Arc::clone(&registry);
        let ids: Vec<TableId> = tables.iter().map(|(id, _)| id.clone()).collect();
        readers.push(thread::spawn(move || {
            let cached = CachedProvider::new(registry);
            let mut acc = 0.0;
            for i in 0..PROBES_PER_READER {
                let id = &ids[(r + i) % ids.len()];
                let lo = -1.5 + (i % 10) as f64 * 0.25;
                let pred = Predicate::new().range(0, lo, lo + 0.8).range(1, lo, lo + 1.2);
                acc += cached.estimate(id, &pred);
            }
            (acc, cached.cache_hits(), cached.cache_misses())
        }));
    }
    let mut hits = 0u64;
    let mut misses = 0u64;
    for reader in readers {
        let (acc, h, m) = reader.join().expect("reader panicked");
        assert!(acc.is_finite());
        hits += h;
        misses += m;
    }

    let stats = registry.stats();
    println!(
        "registry: {} tables x {SHARDS} shards = {} shard services",
        stats.tables, stats.shards
    );
    println!(
        "ingested {} observations across shards ({} refines, {} failures)",
        stats.total.queries_ingested, stats.total.refines, stats.total.refine_failures
    );
    for (id, t) in &stats.per_table {
        let spread: Vec<u64> = t.per_shard.iter().map(|s| s.queries_ingested).collect();
        println!("  {id}: per-shard feedback {spread:?}");
    }
    println!(
        "readers: {} probes, snapshot-cache hit rate {:.4}",
        hits + misses,
        hits as f64 / (hits + misses).max(1) as f64
    );

    // The learned estimates beat the uniform prior on every table.
    for (id, table) in &tables {
        let mut workload =
            RectWorkload::new(table.domain().clone(), 99, ShiftMode::Random, CenterMode::DataRow)
                .with_width_frac(0.1, 0.4);
        let test = workload.take_queries(table, 60);
        let full = table.domain().full_rect();
        let (mut learned, mut prior) = (0.0, 0.0);
        for q in &test {
            let est = registry.estimate(id, &Predicate::from_rect(&q.rect));
            learned += (est - q.selectivity).abs();
            prior += (q.rect.volume() / full.volume() - q.selectivity).abs();
        }
        println!(
            "  {id}: mean abs error {:.4} (uniform prior {:.4})",
            learned / test.len() as f64,
            prior / test.len() as f64
        );
        assert!(learned < prior, "{id}: learned estimates should beat the prior");
    }
}
