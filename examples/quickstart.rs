//! Quickstart: learn selectivities from query feedback, no data scans.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Plays the paper's core loop: a "DBMS" (here an in-memory table) executes
//! range queries and reports their true selectivities; QuickSel refines a
//! uniform mixture model from that feedback alone and answers the
//! optimizer's next selectivity probe in microseconds.

use quicksel::prelude::*;

fn main() {
    // 1. The database substrate: 50k tuples of correlated Gaussian data.
    //    QuickSel never scans this — it only ever sees query feedback.
    let table = quicksel::data::datasets::gaussian_table(2, 0.6, 50_000, 1);
    let domain = table.domain().clone();
    println!("table: {} rows over {} columns", table.row_count(), domain.dim());

    // 2. A fresh estimator via the fluent builder. Before any feedback it
    //    assumes uniformity.
    let mut estimator = QuickSel::builder(domain.clone()).seed(7).build();
    let probe = Predicate::new().range(0, -1.0, 1.0).range(1, -1.0, 1.0).to_rect(&domain);
    println!(
        "before any feedback:  est = {:.4}   (truth = {:.4})",
        estimator.estimate(&probe),
        table.selectivity(&probe)
    );

    // 3. Run a workload: each executed query reports (predicate, true
    //    selectivity) — exactly what an engine's FilterExec collects.
    let mut workload =
        RectWorkload::new(domain.clone(), 42, ShiftMode::Random, CenterMode::DataRow)
            .with_width_frac(0.1, 0.4);
    for (i, q) in workload.take_queries(&table, 100).into_iter().enumerate() {
        estimator.observe(&q);
        if (i + 1) % 25 == 0 {
            println!(
                "after {:3} queries:    est = {:.4}   (truth = {:.4}, {} model params)",
                i + 1,
                estimator.estimate(&probe),
                table.selectivity(&probe),
                estimator.param_count()
            );
        }
    }

    // 4. Score on 100 unseen queries — through a frozen snapshot, the
    //    same immutable object a serving layer would hand each planner
    //    thread.
    let snapshot = estimator.snapshot();
    let test = workload.take_queries(&table, 100);
    let rects: Vec<_> = test.iter().map(|q| q.rect.clone()).collect();
    let estimates = snapshot.estimate_many(&rects);
    let pairs: Vec<(f64, f64)> =
        test.iter().zip(&estimates).map(|(q, &e)| (q.selectivity, e)).collect();
    println!(
        "\nmean relative error on 100 unseen queries: {:.2}%  (model version {})",
        quicksel::data::mean_rel_error_pct(&pairs),
        snapshot.version(),
    );
    let report = estimator.last_report().expect("trained");
    println!(
        "last refinement: {} subpopulations, {} constraints, solve {:?}",
        report.num_subpops, report.num_constraints, report.solve_time
    );
}
