//! Access-path selection: the motivating use case from the paper's intro.
//!
//! ```sh
//! cargo run --release --example query_optimizer
//! ```
//!
//! A toy cost-based optimizer must choose between a full scan and an index
//! probe for each query. The right choice hinges on the predicate's
//! selectivity: index probes win for selective predicates, scans for broad
//! ones. We compare the plans chosen using (i) the uniformity assumption,
//! and (ii) QuickSel's learned estimates, against the oracle that knows
//! true selectivities.

use quicksel::prelude::*;

/// Classic crossover cost model: a scan touches every row; an index probe
/// pays per-row random-access overhead on the selected fraction.
fn scan_cost(rows: f64) -> f64 {
    rows
}
fn index_cost(rows: f64, selectivity: f64) -> f64 {
    // 10x per-tuple penalty for random access.
    10.0 * selectivity * rows
}

#[derive(PartialEq, Clone, Copy, Debug)]
enum Plan {
    FullScan,
    IndexProbe,
}

fn choose(rows: f64, selectivity: f64) -> Plan {
    if index_cost(rows, selectivity) < scan_cost(rows) {
        Plan::IndexProbe
    } else {
        Plan::FullScan
    }
}

fn main() {
    // Instacart-like orders table; predicates over hour-of-day and
    // days-since-prior as in the paper's §5.1.
    let table = quicksel::data::datasets::instacart::instacart_table(200_000, 8);
    let domain = table.domain().clone();
    let rows = table.row_count() as f64;

    // Train QuickSel on past workload feedback.
    let mut workload =
        RectWorkload::new(domain.clone(), 21, ShiftMode::Random, CenterMode::DataRow)
            .with_width_frac(0.05, 0.5);
    let mut qs = QuickSel::new(domain.clone());
    for q in workload.take_queries(&table, 100) {
        qs.observe(&q);
    }

    // Evaluate plan choices for the next 200 queries.
    let trial = workload.take_queries(&table, 200);
    let mut uniform_ok = 0usize;
    let mut learned_ok = 0usize;
    let mut uniform_regret = 0.0f64;
    let mut learned_regret = 0.0f64;
    let b0 = domain.full_rect();
    for q in &trial {
        let oracle = choose(rows, q.selectivity);
        let oracle_cost = scan_cost(rows).min(index_cost(rows, q.selectivity));

        let uni_est = q.rect.intersection_volume(&b0) / b0.volume();
        let uni_plan = choose(rows, uni_est);
        if uni_plan == oracle {
            uniform_ok += 1;
        }
        let uni_cost = match uni_plan {
            Plan::FullScan => scan_cost(rows),
            Plan::IndexProbe => index_cost(rows, q.selectivity),
        };
        uniform_regret += (uni_cost - oracle_cost) / oracle_cost;

        let qs_est = qs.estimate(&q.rect);
        let qs_plan = choose(rows, qs_est);
        if qs_plan == oracle {
            learned_ok += 1;
        }
        let qs_cost = match qs_plan {
            Plan::FullScan => scan_cost(rows),
            Plan::IndexProbe => index_cost(rows, q.selectivity),
        };
        learned_regret += (qs_cost - oracle_cost) / oracle_cost;
    }

    let n = trial.len();
    println!("access-path choices over {n} queries (oracle = true selectivity):\n");
    println!(
        "  uniformity assumption: {:>4}/{} correct plans, mean cost regret {:>6.1}%",
        uniform_ok,
        n,
        100.0 * uniform_regret / n as f64
    );
    println!(
        "  QuickSel estimates:    {:>4}/{} correct plans, mean cost regret {:>6.1}%",
        learned_ok,
        n,
        100.0 * learned_regret / n as f64
    );
    assert!(learned_ok >= uniform_ok, "learned estimates should not choose worse plans");
}
