//! Replicated serving end to end, with a real `kill -9`.
//!
//! The example re-executes itself as a child process running the
//! durable primary (so the kill is a genuine SIGKILL of a separate OS
//! process, not a polite in-process shutdown), then:
//!
//! 1. ingests feedback over the wire with a mid-stream checkpoint,
//! 2. syncs an in-process replica (checkpoint shipping + WAL ranges
//!    through the ordinary recovery path) and serves it,
//! 3. opens a [`FailoverClient`] over `[primary, replica]` and records
//!    the primary's answers,
//! 4. SIGKILLs the primary,
//! 5. asserts reads keep serving through the replica `==` the last
//!    shipped state, a write surfaces as typed `NoEndpoint`, and a
//!    direct write to the replica is a typed `ReadOnly` refusal.
//!
//! Exits non-zero on any divergence; CI runs it as the
//! replication-smoke job.

use quicksel::net::{serve, ErrorCode, NetClient, ServerConfig, ServerRole};
use quicksel::prelude::*;
use quicksel::{
    ClientError, DurabilityOptions, EstimatorRegistry, FailoverClient, ReplicaAgent,
    ReplicaBackend, ReplicaOptions,
};
use std::io::BufRead as _;
use std::path::Path;
use std::process::{Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

const BATCHES: usize = 12;

fn domain() -> Domain {
    Domain::of_reals(&[("x", 0.0, 10.0), ("y", 0.0, 10.0)])
}

fn learner(seed: u64) -> QuickSel {
    QuickSel::builder(domain())
        .refine_policy(RefinePolicy::EveryK(4))
        .fixed_subpops(32)
        .seed(seed)
        .build()
}

/// Deterministic feedback batch `i`, three observations each.
fn batch(i: usize) -> Vec<ObservedQuery> {
    (0..3)
        .map(|j| {
            let k = i * 3 + j;
            let lo_x = (k * 13 % 70) as f64 * 0.1;
            let lo_y = (k * 29 % 60) as f64 * 0.1;
            let len = 1.0 + (k % 5) as f64 * 0.7;
            let rect = Rect::from_bounds(&[(lo_x, lo_x + len), (lo_y, lo_y + len)]);
            ObservedQuery::new(rect, (k % 10) as f64 * 0.1)
        })
        .collect()
}

/// The probe battery the replica is compared on.
fn probes() -> Vec<Rect> {
    let d = domain();
    (0..16)
        .map(|i| {
            let lo = (i % 8) as f64 * 1.1;
            Predicate::new().range(0, lo, lo + 2.5).range(i % 2, 1.0, 8.0).to_rect(&d)
        })
        .collect()
}

/// The child process: a durable primary on an ephemeral loopback port,
/// its address printed on stdout, serving until killed.
fn run_primary(dir: &Path) -> ! {
    let registry = EstimatorRegistry::new();
    registry
        .register_durable(dir, "orders", domain(), 2, DurabilityOptions::default(), |i| {
            learner(i as u64)
        })
        .expect("register durable table");
    let handle = serve(
        Arc::new(registry),
        ServerConfig { addr: "127.0.0.1:0".into(), ..ServerConfig::default() },
    )
    .expect("bind primary");
    println!("ADDR {}", handle.addr());
    use std::io::Write as _;
    std::io::stdout().flush().expect("flush address line");
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

fn fail(msg: &str) -> ! {
    eprintln!("replication example FAILED: {msg}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() == 3 && args[1] == "primary" {
        run_primary(Path::new(&args[2]));
    }

    let scratch =
        std::env::temp_dir().join(format!("quicksel-replication-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let p_dir = scratch.join("primary");
    let r_dir = scratch.join("replica");
    std::fs::create_dir_all(&p_dir).expect("create primary dir");

    // 1. The primary in its own OS process, so the kill below is a real
    //    SIGKILL with no destructors, no flushes, no goodbyes.
    let exe = std::env::current_exe().expect("own executable path");
    let mut child = Command::new(&exe)
        .arg("primary")
        .arg(&p_dir)
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn primary process");
    let mut lines = std::io::BufReader::new(child.stdout.take().expect("child stdout")).lines();
    let addr = match lines.next() {
        Some(Ok(line)) if line.starts_with("ADDR ") => line["ADDR ".len()..].to_string(),
        other => fail(&format!("primary never reported an address: {other:?}")),
    };
    println!("primary: pid {} serving on {addr}", child.id());

    // 2. Ingest over the wire with a mid-stream checkpoint, so the
    //    manifest ships a checkpoint AND a WAL tail beyond it.
    let mut client = NetClient::connect(addr.as_str()).expect("connect primary");
    for i in 0..BATCHES {
        client.observe_batch("orders", &batch(i)).expect("ingest over the wire");
        if i == BATCHES / 2 {
            client.checkpoint_now().expect("mid-stream checkpoint");
        }
    }
    let rects = probes();
    let want = client.estimate_many("orders", &rects).expect("primary estimates");
    if !want.iter().any(|&v| v > 0.0 && v < 1.0) {
        fail("degenerate probe battery");
    }

    // 3. A replica pulls the shipped state and serves it read-only.
    let backend: Arc<ReplicaBackend<QuickSel>> = Arc::new(ReplicaBackend::empty());
    let mut agent = ReplicaAgent::new(
        ReplicaOptions::new(addr.clone(), &r_dir),
        Arc::clone(&backend),
        |_, _, shard| learner(shard as u64),
    );
    let report = agent.sync_once().expect("replica sync");
    println!(
        "replica: synced {} manifest entries, watermark {}",
        report.entries, report.applied_watermark
    );
    let r_handle = serve(
        Arc::clone(&backend),
        ServerConfig { addr: "127.0.0.1:0".into(), ..ServerConfig::default() },
    )
    .expect("bind replica");

    // 4. Failover client over [primary, replica]; reads start on the
    //    primary and must match what we just recorded.
    let endpoints = [addr.clone(), r_handle.addr().to_string()];
    let mut failover =
        FailoverClient::connect(&endpoints, Duration::from_secs(60)).expect("connect failover");
    if failover.active_role() != Some(ServerRole::Primary) {
        fail("failover client must start on the primary");
    }
    let before = failover.estimate_many("orders", &rects).expect("reads via primary");
    if before != want {
        fail("failover reads diverged from the primary before the kill");
    }

    // 5. `Child::kill` is SIGKILL on Unix.
    child.kill().expect("kill primary");
    let _ = child.wait();
    println!("primary: killed with SIGKILL");

    // 6. Reads keep flowing, bit-for-bit equal to the shipped state.
    let after = failover.estimate_many("orders", &rects).expect("reads must fail over");
    if after != want {
        fail("failover changed answers after the primary died");
    }
    if failover.active_role() != Some(ServerRole::Replica) {
        fail("reads must now come from the replica");
    }

    // 7. Writes cannot fail over: the replica refuses, the primary is
    //    gone, the caller learns via the typed exhaustion error.
    match failover.observe_batch("orders", &batch(0)) {
        Err(ClientError::NoEndpoint { .. }) => {}
        other => fail(&format!("write with no primary must be NoEndpoint, got {other:?}")),
    }
    let mut r_client = NetClient::connect(r_handle.addr()).expect("connect replica");
    match r_client.observe_batch("orders", &batch(0)) {
        Err(ClientError::Server { code: ErrorCode::ReadOnly, .. }) => {}
        other => fail(&format!("direct write to the replica must be ReadOnly, got {other:?}")),
    }
    let stats = r_client.stats().expect("replica stats");
    println!(
        "replica: role {} watermark {} lag {} readonly refusals {}",
        stats.role,
        stats.replica_applied_watermark,
        stats.replica_watermark_lag,
        stats.readonly_refusals
    );

    let _ = std::fs::remove_dir_all(&scratch);
    println!("replication example: all checks passed");
}
