//! Side-by-side comparison of all seven estimators on one workload.
//!
//! ```sh
//! cargo run --release --example estimator_comparison
//! ```
//!
//! A compact version of the paper's §5.2/§5.3 head-to-head: every method
//! sees the same DMV-like workload (query-driven methods get query
//! feedback, scan-based ones get data-change notifications) and is scored
//! on the same held-out queries.

use quicksel::prelude::*;
use quicksel::{AutoHist, AutoSample, Isomer, IsomerQp, QueryModel, STHoles};
use std::time::Instant;

fn main() {
    let table = quicksel::data::datasets::dmv::dmv_table(100_000, 3);
    let domain = table.domain().clone();
    println!(
        "DMV-like table: {} rows, columns: {}\n",
        table.row_count(),
        domain.columns().iter().map(|c| c.name.as_str()).collect::<Vec<_>>().join(", ")
    );

    let mut workload =
        RectWorkload::new(domain.clone(), 11, ShiftMode::Random, CenterMode::DataRow)
            .with_width_frac(0.1, 0.4);
    let train = workload.take_queries(&table, 80);
    let test = workload.take_queries(&table, 100);

    let mut methods: Vec<Box<dyn Learn>> = vec![
        Box::new(QuickSel::new(domain.clone())),
        Box::new(STHoles::new(domain.clone())),
        Box::new(Isomer::new(domain.clone())),
        Box::new(IsomerQp::new(domain.clone())),
        Box::new(QueryModel::new(domain.clone())),
        Box::new(AutoHist::with_budget(domain.clone(), 320)),
        Box::new(AutoSample::new(domain.clone(), 320, 5)),
    ];

    println!(
        "{:<12} {:>8} {:>12} {:>12} {:>10}",
        "method", "params", "train time", "rel error", "abs error"
    );
    for est in &mut methods {
        let t = Instant::now();
        // Scan-based methods build their statistics from the data...
        est.sync_data(&table, table.row_count());
        // ...query-driven methods learn from the executed workload.
        for q in &train {
            est.observe(q);
        }
        let train_ms = t.elapsed().as_secs_f64() * 1e3;
        let pairs: Vec<(f64, f64)> =
            test.iter().map(|q| (q.selectivity, est.estimate(&q.rect))).collect();
        println!(
            "{:<12} {:>8} {:>10.1}ms {:>11.2}% {:>10.4}",
            est.name(),
            est.param_count(),
            train_ms,
            quicksel::data::mean_rel_error_pct(&pairs),
            quicksel::data::mean_abs_error(&pairs),
        );
    }
    println!("\n(query-driven methods used 80 observed queries; scan-based methods one full scan)");
}
