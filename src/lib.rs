//! # quicksel — selectivity learning with uniform mixture models
//!
//! A from-scratch Rust reproduction of *"QuickSel: Quick Selectivity
//! Learning with Mixture Models"* (Park, Zhong, Mozafari — SIGMOD 2020),
//! including every substrate the paper's evaluation depends on.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`QuickSel`] — the estimator itself (crate `quicksel-core`),
//! * [`SelectivityService`] — lock-free concurrent serving of immutable
//!   model snapshots (crate `quicksel-service`),
//! * [`EstimatorRegistry`] / [`ShardedService`] / [`CardinalityProvider`]
//!   — the multi-table serving layer: per-table sharded estimators with
//!   deterministic feedback routing behind the planner-facing provider
//!   API, plus the per-thread [`CachedProvider`] read accelerator,
//! * [`geometry`] — predicates, hyperrectangles, domains,
//! * [`linalg`] — the dense solvers behind training,
//! * [`parallel`] — the workspace thread pool the training and batched
//!   estimation hot paths fan out on (`QUICKSEL_THREADS` to override
//!   the size; results are identical at any thread count),
//! * [`data`] — tables, synthetic datasets, workloads, metrics, and the
//!   [`Estimate`]/[`Learn`] estimator contract,
//! * [`persist`] — durable estimator state: a versioned, checksummed
//!   snapshot format, per-shard feedback WALs, and the crash-recovering
//!   checkpoint subsystem behind
//!   [`SelectivityService::open_durable`](quicksel_service::SelectivityService::open_durable)
//!   and [`EstimatorRegistry::recover_from`](quicksel_service::EstimatorRegistry::recover_from),
//! * [`net`] — networked serving: the CRC-framed binary wire protocol,
//!   the `quicksel-server` TCP runtime with bounded workers and graceful
//!   drain, rate-based admission control, and the [`RemoteProvider`]
//!   planner seam over a remote registry,
//! * [`replica`] — replicated serving: the checkpoint/WAL shipping
//!   agent ([`ReplicaAgent`]), the read-only [`ReplicaBackend`], and
//!   the multi-endpoint [`FailoverClient`] that moves reads to a
//!   replica (within a staleness bound) when the primary goes away,
//! * [`baselines`] — STHoles, ISOMER, ISOMER+QP, QueryModel, AutoHist,
//!   AutoSample.
//!
//! ## Quick start
//!
//! The estimator API is split into a read side ([`Estimate`]: `&self`
//! only) and a write side ([`Learn`]: batched feedback + fallible
//! retraining). Configure with the builder, ingest feedback in batches,
//! and freeze snapshots for serving:
//!
//! ```
//! use quicksel::prelude::*;
//!
//! // A table substrate standing in for the DBMS.
//! let table = quicksel::data::datasets::gaussian_table(2, 0.5, 10_000, 7);
//!
//! // The estimator only ever sees query feedback, never the data.
//! let mut estimator = QuickSel::builder(table.domain().clone())
//!     .refine_policy(RefinePolicy::Manual)
//!     .seed(42)
//!     .build();
//! let mut workload = RectWorkload::new(
//!     table.domain().clone(), 42, ShiftMode::Random, CenterMode::DataRow);
//!
//! // Batched feedback ingestion + one explicit (fallible) retrain.
//! let feedback = workload.take_queries(&table, 30);
//! estimator.observe_batch(&feedback);
//! let outcome = estimator.refine().expect("training failed");
//! assert!(outcome.retrained());
//!
//! // Ask for selectivity estimates for new predicates.
//! let probe = workload.next_query(&table);
//! let est = estimator.estimate(&probe.rect);
//! assert!((est - probe.selectivity).abs() < 0.25);
//! ```
//!
//! ## Concurrent serving
//!
//! Wrap the estimator in a [`SelectivityService`] to let any number of
//! planner threads estimate lock-free while feedback batches retrain in
//! the background:
//!
//! ```
//! use quicksel::prelude::*;
//! use std::sync::Arc;
//!
//! let domain = Domain::of_reals(&[("x", 0.0, 10.0)]);
//! let service = Arc::new(SelectivityService::new(
//!     QuickSel::builder(domain.clone()).build(),
//! ));
//!
//! // Reader threads: grab a snapshot, estimate with &self only.
//! let snapshot = service.snapshot();
//! let probe = Predicate::new().range(0, 2.0, 4.0).to_rect(&domain);
//! assert!((0.0..=1.0).contains(&snapshot.estimate(&probe)));
//!
//! // Writer: validated batch ingestion + retrain + atomic publish.
//! let half = Predicate::new().less_than(0, 5.0).to_rect(&domain);
//! service.observe_batch(&[ObservedQuery::new(half, 0.5)]).expect("train");
//! assert_eq!(service.version(), 1);
//! ```

pub use quicksel_baselines as baselines;
pub use quicksel_core as core;
pub use quicksel_data as data;
pub use quicksel_engine as engine;
pub use quicksel_fault as fault;
pub use quicksel_geometry as geometry;
pub use quicksel_linalg as linalg;
pub use quicksel_net as net;
pub use quicksel_parallel as parallel;
pub use quicksel_persist as persist;
pub use quicksel_replica as replica;
pub use quicksel_service as service;

pub use quicksel_baselines::{AutoHist, AutoSample, Isomer, IsomerQp, QueryModel, STHoles};
pub use quicksel_core::{
    FrozenModel, ModelSnapshot, QuickSel, QuickSelBuilder, QuickSelConfig, RefinePolicy,
    TrainingMethod,
};
pub use quicksel_data::{
    Estimate, EstimatorError, Learn, ObservedQuery, RefineOutcome, SnapshotSource, Table,
};
pub use quicksel_fault::{FaultPlan, FaultStream, IoFault, IoOp, StreamFault};
pub use quicksel_geometry::{BoolExpr, Domain, Interval, Predicate, Rect};
pub use quicksel_net::{
    ClientError, FailoverClient, NetBackend, NetClient, NetServerStats, RemoteProvider,
    ServerConfig, ServerHandle, ServerRole, WireError, WireStats,
};
pub use quicksel_persist::{DurabilityOptions, PersistError, PersistLearner};
pub use quicksel_replica::{ReplicaAgent, ReplicaBackend, ReplicaOptions};
pub use quicksel_service::{
    CachedProvider, CardinalityProvider, DynRegistry, EstimatorRegistry, HealthState,
    LearnerProvider, RecoveryReport, RegistryStats, SelectivityService, ServiceStats,
    ShardRecovery, ShardedService, ShardedStats, SharedSnapshot, TableId,
};

/// Convenience imports covering the common workflow.
pub mod prelude {
    pub use quicksel_core::{ModelSnapshot, QuickSel, QuickSelConfig, RefinePolicy};
    pub use quicksel_data::workload::{CenterMode, QueryGenerator, RectWorkload, ShiftMode};
    pub use quicksel_data::{
        Estimate, EstimatorError, Learn, ObservedQuery, RefineOutcome, SnapshotSource, Table,
    };
    pub use quicksel_geometry::{Domain, Predicate, Rect};
    pub use quicksel_service::{
        CachedProvider, CardinalityProvider, EstimatorRegistry, SelectivityService, ShardedService,
        TableId,
    };
}
