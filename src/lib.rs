//! # quicksel — selectivity learning with uniform mixture models
//!
//! A from-scratch Rust reproduction of *"QuickSel: Quick Selectivity
//! Learning with Mixture Models"* (Park, Zhong, Mozafari — SIGMOD 2020),
//! including every substrate the paper's evaluation depends on.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`QuickSel`] — the estimator itself (crate `quicksel-core`),
//! * [`geometry`] — predicates, hyperrectangles, domains,
//! * [`linalg`] — the dense solvers behind training,
//! * [`data`] — tables, synthetic datasets, workloads, metrics,
//! * [`baselines`] — STHoles, ISOMER, ISOMER+QP, QueryModel, AutoHist,
//!   AutoSample.
//!
//! ## Quick start
//!
//! ```
//! use quicksel::prelude::*;
//!
//! // A table substrate standing in for the DBMS.
//! let table = quicksel::data::datasets::gaussian_table(2, 0.5, 10_000, 7);
//!
//! // The estimator only ever sees query feedback, never the data.
//! let mut estimator = QuickSel::new(table.domain().clone());
//! let mut workload = RectWorkload::new(
//!     table.domain().clone(), 42, ShiftMode::Random, CenterMode::DataRow);
//! for q in workload.take_queries(&table, 30) {
//!     estimator.observe(&q);
//! }
//!
//! // Ask for selectivity estimates for new predicates.
//! let probe = workload.next_query(&table);
//! let est = estimator.estimate(&probe.rect);
//! assert!((est - probe.selectivity).abs() < 0.25);
//! ```

pub use quicksel_baselines as baselines;
pub use quicksel_core as core;
pub use quicksel_data as data;
pub use quicksel_engine as engine;
pub use quicksel_geometry as geometry;
pub use quicksel_linalg as linalg;

pub use quicksel_baselines::{AutoHist, AutoSample, Isomer, IsomerQp, QueryModel, STHoles};
pub use quicksel_core::{QuickSel, QuickSelConfig, RefinePolicy, TrainingMethod};
pub use quicksel_data::{ObservedQuery, SelectivityEstimator, Table};
pub use quicksel_geometry::{BoolExpr, Domain, Interval, Predicate, Rect};

/// Convenience imports covering the common workflow.
pub mod prelude {
    pub use quicksel_core::{QuickSel, QuickSelConfig, RefinePolicy};
    pub use quicksel_data::workload::{CenterMode, QueryGenerator, RectWorkload, ShiftMode};
    pub use quicksel_data::{ObservedQuery, SelectivityEstimator, Table};
    pub use quicksel_geometry::{Domain, Predicate, Rect};
}
